"""Request/response RPC over the simulated network.

Semantics are deliberately *at-most-once with silent loss*: a call either
returns the handler's value, raises a typed remote error, or raises
:class:`~repro.sim.errors.RPCTimeout` -- and on timeout the caller cannot
know whether the request was lost, the response was lost, or the server
crashed.  Exactly-once behaviour has to be built *on top* of this (that is
what GRAM's two-phase commit with sequence numbers does, and what the
CLAIM-2PC benchmark measures).

Usage::

    class EchoService(Service):
        service_name = "echo"
        def handle_ping(self, ctx, text):
            return text.upper()

    # inside a process generator:
    value = yield from call(my_host, "server-host", "echo", "ping",
                            timeout=5.0, text="hi")
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional, TYPE_CHECKING

from .errors import (
    AuthenticationError,
    AuthorizationError,
    RemoteError,
    RPCTimeout,
    ServiceUnavailable,
)
from .fastcopy import fast_deepcopy
from .kernel import Event, Timeout
from .network import Datagram
from .perf import PerfFlags

if TYPE_CHECKING:  # pragma: no cover
    from .hosts import Host

_ERROR_KINDS = {
    "AuthenticationError": AuthenticationError,
    "AuthorizationError": AuthorizationError,
    "ServiceUnavailable": ServiceUnavailable,
}


@dataclass(frozen=True)
class CallContext:
    """Information about the remote caller, passed to every handler."""

    caller_host: str
    credential: Any = None
    principal: Optional[str] = None   # local account after gridmap mapping


class _ReplyDispatch:
    """Hidden per-host service that routes RPC responses to waiting events."""

    SERVICE = "_rpc"

    def __init__(self, host: "Host"):
        self.pending: dict[int, Any] = {}
        host.register_service(self.SERVICE, self)

    def deliver(self, dgram: "Datagram") -> None:
        token = dgram.payload.get("token")
        ev = self.pending.pop(token, None)
        if ev is not None and not ev.triggered:
            ev.succeed(dgram.payload)


def _dispatch(host: "Host") -> _ReplyDispatch:
    disp = host.get_service(_ReplyDispatch.SERVICE)
    if disp is None:
        disp = _ReplyDispatch(host)
    return disp


def _next_token(sim) -> int:
    counter = getattr(sim, "_rpc_tokens", None)
    if counter is None:
        counter = itertools.count(1)
        sim._rpc_tokens = counter
    return next(counter)


# -- inline fast path ---------------------------------------------------------
#
# ``PerfFlags.rpc_inline`` short-circuits the common RPC shape -- a plain
# synchronous handler on a reachable host, no authorizer -- skipping the
# Datagram wrappers, the full-payload deep-copies and the per-request serve
# process.  The contract is the usual one: bit-identical digests versus the
# real path, which pins three things exactly:
#
# * RNG draws -- the shared "network" stream sees the same draws in the
#   same order at the same times (a jitter draw per non-dropped leg, a loss
#   roll exactly where ``Network.send`` would roll one);
# * heap positions -- each stage is scheduled at the execution point where
#   the real machinery pushes its event: the request arrival where ``send``
#   schedules ``_arrive``, the handler via a zero-delay schedule issued
#   inside the arrival (the serve process's boot event lands in precisely
#   that slot), and the reply arrival where the response send schedules;
# * failure windows -- host/partition/service state is re-checked at each
#   hop's *arrival* time.  A service object swapped in flight by a
#   crash+restart falls back to real datagram delivery (the new instance
#   must serve the request, as it would for the real in-flight message),
#   while a swap during the zero-delay serve window drops the call (the
#   crash would have killed the serve process).
#
# Anything that does not fit -- generator handlers, authorizers, Mailboxes,
# services overriding ``deliver``/``_serve`` -- transparently takes the
# real path.  The decision is made per send, so mid-run topology or
# loss-rate changes are honoured.

_INLINE_CACHE: dict[tuple[type, str], Optional[tuple[bool, str]]] = {}

#: Optional live RPC tally for profiling (see ``repro.profile``): when a
#: dict is installed here, every ``call()``/``notify()`` increments
#: ``RPC_STATS[(service, method)]``.  Plain Python bookkeeping outside
#: the simulation -- no events, no RNG, no metrics -- so enabling it
#: never changes a run's digest.
RPC_STATS: Optional[dict] = None

# Immutable result types that never need the serialization copy.
_ATOMS = frozenset((type(None), bool, int, float, str))

# CallContext is frozen, so unauthenticated contexts are shareable; one
# cached instance per caller host saves an allocation per inline call.
_CTX_CACHE: dict[str, CallContext] = {}


def _inline_plan(sim, dst: str, service: str, method: str):
    """Return ``(service, fresh_result, handler_name)`` or None."""
    dst_host = sim.hosts.get(dst)
    if dst_host is None or not dst_host.up:
        return None
    svc = dst_host.services.get(service)
    if svc is None:
        return None
    cls = type(svc)
    key = (cls, method)
    plan = _INLINE_CACHE.get(key, False)
    if plan is False:
        mname = "handle_" + method
        handler = getattr(cls, mname, None)
        ok = (getattr(cls, "deliver", None) is Service.deliver
              and getattr(cls, "_serve", None) is Service._serve
              and handler is not None
              and not inspect.isgeneratorfunction(handler))
        fresh = method in getattr(cls, "rpc_fresh_results", ())
        plan = (fresh, mname) if ok else None
        _INLINE_CACHE[key] = plan
    if plan is None or svc.authorizer is not None:
        return None
    return svc, plan[0], plan[1]


def _mimic_send(net, src_host: "Host", dst: str, service: str,
                on_arrive) -> None:
    """Replicate ``Network.send``'s bookkeeping, draws and scheduling.

    Identical control flow minus the Datagram and the payload copy (the
    caller copies exactly what crosses the boundary).  ``on_arrive`` is
    attached directly as an event callback (it receives the event).
    """
    net.sent += 1
    if not src_host.up:
        net.dropped += 1
        return
    if not net.reachable(src_host.name, dst):
        net.dropped += 1
        return
    dst_host = net.sim.hosts.get(dst)
    same_site = (dst_host is not None and src_host.site
                 and src_host.site == dst_host.site)
    if not same_site and net.loss_rate > 0.0 and \
            net._rng.random() < net.loss_rate:
        net.dropped += 1
        net.sim.trace.log("network", "loss", src=src_host.name, dst=dst,
                          service=service)
        return
    latency = net._base_latency(src_host, dst_host, dst) \
        + net._rng.uniform(0.0, net.jitter)
    Timeout(net.sim, latency).callbacks.append(on_arrive)


def _drain(net, host: "Host", reply_to: str, token, gen):
    # Only reachable if a handler was swapped for a generator in flight
    # (never in-tree); finish it under serve semantics.
    ok, value, error = True, None, None
    try:
        value = yield from gen
    except Exception as exc:  # noqa: BLE001 - marshalled to the caller
        ok = False
        error = {"kind": type(exc).__name__, "message": str(exc)}
    if token is None:
        return
    net.send(host, reply_to, _ReplyDispatch.SERVICE, {
        "kind": "response", "token": token, "ok": ok,
        "value": value, "error": error,
    })


def _inline_request(sim, net, src: "Host", dst: str, service: str,
                    method: str, svc, plan, token, credential,
                    args) -> None:
    """One request (and, for calls, its response) on the inline path."""
    fresh, mname = plan
    # Snapshot what crosses the wire now, like the real send's payload
    # copy.  The kwargs dict itself is rebuilt by the ** call below, so
    # only the values need isolating.
    req_args = fast_deepcopy(args) if args else args
    req_cred = credential if credential is None else fast_deepcopy(credential)

    def serve(_ev) -> None:
        # A crash in the zero-delay window would have killed the serve
        # process; the services dict is cleared (and repopulated with new
        # objects on restart), so object identity detects it.
        dst_host = sim.hosts.get(dst)
        if dst_host is None or not dst_host.up or \
                dst_host.services.get(service) is not svc:
            return
        ok, value, error = True, None, None
        try:
            if req_cred is None:
                ctx = _CTX_CACHE.get(src.name)
                if ctx is None:
                    ctx = CallContext(caller_host=src.name)
                    _CTX_CACHE[src.name] = ctx
            else:
                ctx = CallContext(caller_host=src.name,
                                  credential=req_cred, principal=None)
            handler = getattr(svc, mname, None)
            if handler is None:
                raise ServiceUnavailable(
                    f"service {svc.name} has no method {method!r}")
            result = handler(ctx, **req_args)
            if inspect.isgenerator(result):
                dst_host.spawn(_drain(net, dst_host, src.name, token, result))
                return
            value = result
        except Exception as exc:  # noqa: BLE001 - marshalled to the caller
            ok = False
            error = {"kind": type(exc).__name__, "message": str(exc)}
        if token is None:
            return
        # Immutable results and declared-fresh ones cross without the
        # serialization copy; content is identical either way.
        if fresh or type(value) in _ATOMS:
            value_copy = value
        else:
            value_copy = fast_deepcopy(value)

        def reply_arrive(_ev) -> None:
            if not net.reachable(dst, src.name):
                net.dropped += 1
                return
            caller = sim.hosts.get(src.name)
            if caller is None or not caller.up:
                net.dropped += 1
                return
            disp = caller.services.get(_ReplyDispatch.SERVICE)
            if disp is None:
                net.dropped += 1
                return
            net.delivered += 1
            ev = disp.pending.pop(token, None)
            if ev is not None and not ev.triggered:
                ev.succeed({"ok": ok, "value": value_copy, "error": error})

        _mimic_send(net, dst_host, src.name, _ReplyDispatch.SERVICE,
                    reply_arrive)

    def arrive(_ev) -> None:
        if not net.reachable(src.name, dst):
            net.dropped += 1
            return
        dst_host = sim.hosts.get(dst)
        if dst_host is None or not dst_host.up:
            net.dropped += 1
            return
        svc_now = dst_host.services.get(service)
        if svc_now is None:
            net.dropped += 1
            return
        net.delivered += 1
        if svc_now is svc:
            # The serve process's boot event: the same zero-delay push the
            # real spawn would make at this execution point.
            Timeout(sim, 0.0).callbacks.append(serve)
        else:
            # Service replaced in flight (crash + restart): the real
            # datagram would reach the new instance -- deliver it.
            svc_now.deliver(Datagram(src.name, dst, service, {
                "kind": "request", "method": method, "args": req_args,
                "token": token, "reply_to": src.name,
                "credential": req_cred,
            }))

    _mimic_send(net, src, dst, service, arrive)


def call(
    src: "Host",
    dst: str,
    service: str,
    method: str,
    timeout: float = 10.0,
    credential: Any = None,
    **args: Any,
) -> Generator[Any, Any, Any]:
    """RPC a remote service method; use with ``yield from``.

    Raises :class:`RPCTimeout` if no response arrives within ``timeout``
    simulated seconds, or a typed error mirroring the remote exception.
    """
    sim = src.sim
    net = sim.network
    if net is None:
        raise RuntimeError("simulation has no Network")
    if RPC_STATS is not None:
        key = (service, method)
        RPC_STATS[key] = RPC_STATS.get(key, 0) + 1
    disp = _dispatch(src)
    token = _next_token(sim)
    plan = _inline_plan(sim, dst, service, method) \
        if PerfFlags.rpc_inline else None
    if plan is not None:
        reply = Event(sim, name="rpc")
        disp.pending[token] = reply
        _inline_request(sim, net, src, dst, service, method, plan[0],
                        plan[1:], token, credential, args)
        timer = Timeout(sim, timeout)
        # Lightweight any_of: the wakeup event is succeeded from inside
        # the winning child's callbacks, so the process resumes exactly
        # one event push after the child fires -- the same distance the
        # real AnyOf's own scheduled event puts it at.
        wake = Event(sim, name="any_of")

        def _reply_won(ev, wake=wake):
            if not wake.triggered:
                wake.succeed((0, ev._value))

        def _timed_out(ev, wake=wake):
            if not wake.triggered:
                wake.succeed((1, None))

        reply.callbacks.append(_reply_won)
        timer.callbacks.append(_timed_out)
        index, value = yield wake
    else:
        reply = sim.event(name=f"rpc:{service}.{method}:{token}")
        disp.pending[token] = reply
        net.send(src, dst, service, {
            "kind": "request",
            "method": method,
            "args": args,
            "token": token,
            "reply_to": src.name,
            "credential": credential,
        })
        timer = sim.timeout(timeout)
        index, value = yield sim.any_of([reply, timer])
    if index == 1:
        disp.pending.pop(token, None)
        raise RPCTimeout(f"{service}.{method} on {dst} (after {timeout}s)")
    timer.cancel()
    if value["ok"]:
        return value["value"]
    err = value["error"]
    exc_type = _ERROR_KINDS.get(err["kind"], RemoteError)
    if exc_type is RemoteError:
        raise RemoteError(err["message"], kind=err["kind"])
    raise exc_type(err["message"])


def notify(
    src: "Host",
    dst: str,
    service: str,
    method: str,
    credential: Any = None,
    **args: Any,
) -> None:
    """One-way datagram dispatched to ``handle_<method>`` (no response)."""
    sim = src.sim
    net = sim.network
    if RPC_STATS is not None:
        key = (service, method)
        RPC_STATS[key] = RPC_STATS.get(key, 0) + 1
    if PerfFlags.rpc_inline and net is not None:
        plan = _inline_plan(sim, dst, service, method)
        if plan is not None:
            _inline_request(sim, net, src, dst, service, method, plan[0],
                            plan[1:], None, credential, args)
            return
    net.send(src, dst, service, {
        "kind": "request",
        "method": method,
        "args": args,
        "token": None,
        "reply_to": src.name,
        "credential": credential,
    })


class Service:
    """Base class for RPC services.

    Subclasses define ``handle_<method>(self, ctx, **kwargs)``; handlers may
    be plain methods or generators (which can do simulated work / nested
    RPCs).  Setting ``authorizer`` enforces GSI-style authentication on
    every request; on success the mapped local principal is available as
    ``ctx.principal``.

    ``rpc_fresh_results`` lists method names whose return values are
    freshly allocated per call (no aliasing with server state); the
    inline RPC fast path hands those to the caller without the
    serialization deep-copy.  Only declare a method when every container
    it returns is built inside the handler.
    """

    service_name: str = ""
    rpc_fresh_results: tuple = ()

    def __init__(self, host: "Host", name: str = "", authorizer: Any = None):
        self.host = host
        self.sim = host.sim
        self.name = name or self.service_name
        if not self.name:
            raise ValueError("service needs a name")
        self.authorizer = authorizer
        host.register_service(self.name, self)

    def shutdown(self) -> None:
        self.host.unregister_service(self.name)

    # -- delivery -----------------------------------------------------------
    def deliver(self, dgram: "Datagram") -> None:
        payload = dgram.payload
        if payload.get("kind") != "request":
            return
        self.host.spawn(
            self._serve(dgram),
            name=f"{self.name}.{payload.get('method')}@{self.host.name}",
        )

    def _serve(self, dgram: "Datagram") -> Generator[Any, Any, None]:
        payload = dgram.payload
        method = payload["method"]
        token = payload["token"]
        ok, value, error = True, None, None
        try:
            principal = None
            if self.authorizer is not None:
                principal = self.authorizer.authorize(
                    payload.get("credential"), self.sim.now
                )
            ctx = CallContext(
                caller_host=dgram.src,
                credential=payload.get("credential"),
                principal=principal,
            )
            handler = getattr(self, "handle_" + method, None)
            if handler is None:
                raise ServiceUnavailable(
                    f"service {self.name} has no method {method!r}")
            result = handler(ctx, **payload["args"])
            if inspect.isgenerator(result):
                result = yield from result
            value = result
        except Exception as exc:  # noqa: BLE001 - marshalled to the caller
            ok = False
            error = {"kind": type(exc).__name__, "message": str(exc)}
        if token is None:
            return
        self.sim.network.send(self.host, payload["reply_to"],
                              _ReplyDispatch.SERVICE, {
            "kind": "response",
            "token": token,
            "ok": ok,
            "value": value,
            "error": error,
        })
