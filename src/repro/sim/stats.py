"""Metrics registry: first-class observability for the simulation.

The trace (:mod:`repro.sim.trace`) records *what happened*; this module
records *how much and how fast*, incrementally, so consumers never have
to replay the whole event log.  Three instrument kinds:

* :class:`Counter` -- monotonically increasing totals, optionally split
  by a string label (e.g. probe outcomes by verdict).
* :class:`Gauge` -- an instantaneous level (queue depth, busy slots)
  that additionally integrates itself over *simulated* time, so its
  time-weighted average and total area (CPU-seconds) are O(1) reads.
* :class:`Histogram` -- a value distribution (submit latency, queue
  wait) with count/sum/min/max and percentile estimates from a bounded
  sample reservoir.

Every :class:`~repro.sim.kernel.Simulator` owns a
:class:`MetricsRegistry` as ``sim.metrics``; daemons call
``sim.metrics.counter("gridmanager.resubmits").inc()`` and similar from
their hot paths.  All state advances on ``sim.now`` only -- no wall
clock, no global randomness -- so identical seeds produce identical
snapshots and determinism of the simulation is preserved.

The JSON snapshot (:meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.to_json`) is the export format consumed by the
benchmark harness and by :mod:`repro.grid.metrics`.
"""

from __future__ import annotations

import json
from typing import Any, Optional, TYPE_CHECKING

from .errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


class Counter:
    """Monotonically increasing total, optionally split by label."""

    kind = "counter"

    __slots__ = ("name", "_total", "_by_label")

    def __init__(self, name: str):
        self.name = name
        self._total = 0.0
        self._by_label: dict[str, float] = {}

    def inc(self, amount: float = 1.0, label: Optional[str] = None) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._total += amount
        if label is not None:
            key = str(label)
            self._by_label[key] = self._by_label.get(key, 0.0) + amount

    @property
    def value(self) -> float:
        return self._total

    def labelled(self, label: str) -> float:
        return self._by_label.get(str(label), 0.0)

    def share(self, label: str) -> float:
        """`label`'s fraction of the labelled total (fair-share view).

        The denominator is the sum over labels, not ``value``: callers
        may also ``inc()`` without a label, and an unlabelled increment
        should not dilute every tenant's share.
        """
        denom = sum(self._by_label.values())
        if denom == 0.0:
            return 0.0
        return self._by_label.get(str(label), 0.0) / denom

    @property
    def labels(self) -> dict[str, float]:
        return dict(self._by_label)

    def snapshot(self) -> dict:
        out: dict[str, Any] = {"type": self.kind, "value": self._total}
        if self._by_label:
            out["labels"] = dict(sorted(self._by_label.items()))
        return out


class Gauge:
    """Instantaneous level, integrated over simulated time.

    ``integral`` is the area under the level curve since creation (for a
    busy-slot gauge: CPU-seconds delivered); ``time_average`` divides it
    by elapsed simulated time.  ``first_active``/``last_idle`` bracket
    the window in which the gauge was nonzero, which is what incremental
    concurrency statistics need.
    """

    kind = "gauge"

    __slots__ = ("name", "sim", "_value", "_area", "_since", "_t0",
                 "_min", "_max", "first_active", "last_idle")

    def __init__(self, name: str, sim: "Simulator"):
        self.name = name
        self.sim = sim
        self._value = 0.0
        self._area = 0.0
        self._t0 = sim.now
        self._since = sim.now
        self._min = 0.0
        self._max = 0.0
        self.first_active: Optional[float] = None
        self.last_idle: Optional[float] = None

    def _advance(self) -> None:
        now = self.sim.now
        if now > self._since:
            self._area += self._value * (now - self._since)
            self._since = now

    def set(self, value: float) -> None:
        self._advance()
        old = self._value
        self._value = float(value)
        self._min = min(self._min, self._value)
        self._max = max(self._max, self._value)
        if old == 0.0 and self._value != 0.0 and self.first_active is None:
            self.first_active = self.sim.now
        if old != 0.0 and self._value == 0.0:
            self.last_idle = self.sim.now

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max

    @property
    def min(self) -> float:
        return self._min

    @property
    def integral(self) -> float:
        # Computed without folding into ``_area``: a read must not
        # mutate state, or *when* snapshots are taken changes the
        # float-accumulation order (and thus run digests by ulps).
        now = self.sim.now
        extra = self._value * (now - self._since) if now > self._since \
            else 0.0
        return self._area + extra

    @property
    def time_average(self) -> float:
        span = self.sim.now - self._t0
        return self.integral / span if span > 0 else self._value

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "value": self._value,
            "min": self._min,
            "max": self._max,
            "integral": self.integral,
            "time_average": self.time_average,
            "first_active": self.first_active,
            "last_idle": self.last_idle,
        }


class Histogram:
    """Value distribution with exact count/sum/min/max.

    Percentiles come from a bounded reservoir (first ``max_samples``
    observations; the rest only update the exact aggregates and are
    counted in ``sample_dropped``).  Keeping the *first* N rather than a
    random subsample keeps the registry deterministic.
    """

    kind = "histogram"

    __slots__ = ("name", "count", "total", "_min", "_max",
                 "max_samples", "_samples", "sample_dropped")

    def __init__(self, name: str, max_samples: int = 4096):
        self.name = name
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self.max_samples = max_samples
        self._samples: list[float] = []
        self.sample_dropped = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            self.sample_dropped += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def percentile(self, q: float) -> float:
        """Linearly interpolated percentile over the sample reservoir."""
        if not self._samples:
            return 0.0
        xs = sorted(self._samples)
        if len(xs) == 1:
            return xs[0]
        pos = (q / 100.0) * (len(xs) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(xs) - 1)
        frac = pos - lo
        return xs[lo] * (1.0 - frac) + xs[hi] * frac

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "sample_dropped": self.sample_dropped,
        }


class MetricsRegistry:
    """Named instruments attached to one :class:`Simulator`.

    Accessors are get-or-create: the first call for a name fixes its
    kind, and asking for the same name as a different kind is an error
    (it would silently fork the statistic).
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._metrics: dict[str, Any] = {}

    def _get(self, name: str, kind: type, *args: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise SimulationError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {kind.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, self.sim)

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        hist = self._metrics.get(name)
        if hist is None:
            hist = Histogram(name, max_samples=max_samples)
            self._metrics[name] = hist
        elif not isinstance(hist, Histogram):
            raise SimulationError(
                f"metric {name!r} already registered as {hist.kind}, "
                "requested as histogram")
        return hist

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- export ------------------------------------------------------------
    def snapshot(self, prefix: str = "") -> dict:
        """JSON-ready snapshot of every metric (optionally name-filtered)."""
        return {
            "time": self.sim.now,
            "metrics": {
                name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())
                if name.startswith(prefix)
            },
        }

    def to_json(self, prefix: str = "", indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(prefix=prefix), indent=indent,
                          sort_keys=True)
