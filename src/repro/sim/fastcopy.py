"""Structural deep copy for simulation payloads.

``copy.deepcopy`` dominated the profile of large runs: every datagram is
copied once at the network boundary (serialization semantics -- no
object sharing across hosts) and every persisted queue record is copied
on write and on read (so aliasing can never masquerade as persistence).
Those payloads are almost entirely trees of dicts/lists/tuples over
primitives, for which ``deepcopy``'s generic memo machinery is ~10x
slower than a direct structural walk.

:func:`fast_deepcopy` copies exactly those shapes directly and falls
back to ``copy.deepcopy`` for anything else (dataclasses, ClassAds --
which define ``__deepcopy__`` -- sets, exotic objects), so semantics
match ``deepcopy`` for every payload the simulator actually ships.  The
one intentional difference: reference cycles *through plain
dict/list/tuple containers* are not supported (RPC payloads and queue
records are trees by construction; objects handled by the fallback keep
full cycle support).

Gated by :class:`repro.sim.perf.PerfFlags.fast_copy`; with the flag off
every call is a plain ``copy.deepcopy``.
"""

from __future__ import annotations

import copy
from typing import Any

from .perf import PerfFlags

_ATOMIC = (str, int, float, bool, bytes, type(None))


def _walk(obj: Any) -> Any:
    cls = obj.__class__
    if cls in _ATOMIC:
        return obj
    if cls is dict:
        return {_walk(k): _walk(v) for k, v in obj.items()}
    if cls is list:
        return [_walk(v) for v in obj]
    if cls is tuple:
        return tuple(_walk(v) for v in obj)
    return copy.deepcopy(obj)


def fast_deepcopy(obj: Any) -> Any:
    """Deep-copy `obj`; structural fast path when the perf flag is on."""
    if not PerfFlags.fast_copy:
        return copy.deepcopy(obj)
    return _walk(obj)
