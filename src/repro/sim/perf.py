"""Performance-feature flags: every hot-path optimization, toggleable.

The scale-out work (see ``docs/PERFORMANCE.md``) rebuilt several hot
paths -- lazy trace indexing, heap tombstone compaction, structural
payload copying, scheduler state indexes, and idle-skip poll loops.
Each one is required to be *behavior-preserving*: with the flag on or
off, the same ``(scenario, seed)`` must produce a bit-identical
:func:`repro.chaos.digest.run_digest`.

Keeping the legacy code paths alive behind these flags is what makes
that claim testable (``tests/sim/test_perf_equivalence.py``) and what
lets ``benchmarks/bench_scale.py`` measure the before/after honestly in
a single process.  Flags are process-global (class attributes) because
the simulator is single-threaded and benchmarks flip them between whole
runs, never mid-run.
"""

from __future__ import annotations

from contextlib import contextmanager

_FLAG_NAMES = (
    "lazy_trace_index",
    "heap_compaction",
    "fast_copy",
    "scheduler_indexes",
    "idle_poll_sleep",
    "collector_eq_index",
    "negotiator_match_memo",
    "rpc_inline",
)


class PerfFlags:
    """Global switches for the optimized hot paths (default: all on).

    * ``lazy_trace_index`` -- :class:`repro.sim.trace.Trace` defers
      building its per-component/per-event query indexes until the
      first query instead of paying three dict updates per ``log()``.
    * ``heap_compaction`` -- the kernel compacts cancelled-event
      tombstones out of the event heap once they dominate it.
    * ``fast_copy`` -- network payloads and stable-storage records are
      copied with a structural fast path instead of ``copy.deepcopy``.
    * ``scheduler_indexes`` -- the Condor-G scheduler maintains
      incremental nonterminal/unsubmitted/watchable/jmid indexes so the
      GridManager loops stop scanning the whole queue.
    * ``idle_poll_sleep`` -- GridManager poll/probe/submit loops sleep
      on a wake event while they have nothing to watch, instead of
      ticking every interval; tick *phase* is preserved so active-pass
      timing is unchanged.
    * ``collector_eq_index`` -- the Condor Collector answers
      attribute-equality constraints (``State == "Unclaimed"``) from
      per-adtype value buckets instead of evaluating the constraint
      against every live ad.
    * ``negotiator_match_memo`` -- the Negotiator memoizes
      Requirements/Rank evaluation per (job-signature, machine) within
      a cycle and serves matches from a rank-ordered candidate index
      instead of a linear ``best_match`` scan per job.
    * ``rpc_inline`` -- RPCs to plain synchronous handlers skip the
      Datagram wrappers, full-payload deep-copies and the per-request
      serve process; the inline path replays the real path's RNG draws,
      heap positions and failure checks exactly (see
      :mod:`repro.sim.rpc`).
    """

    lazy_trace_index: bool = True
    heap_compaction: bool = True
    fast_copy: bool = True
    scheduler_indexes: bool = True
    idle_poll_sleep: bool = True
    collector_eq_index: bool = True
    negotiator_match_memo: bool = True
    rpc_inline: bool = True


def set_all(enabled: bool) -> None:
    for name in _FLAG_NAMES:
        setattr(PerfFlags, name, enabled)


def snapshot() -> dict:
    return {name: getattr(PerfFlags, name) for name in _FLAG_NAMES}


def restore(saved: dict) -> None:
    for name, value in saved.items():
        setattr(PerfFlags, name, value)


@contextmanager
def perf_mode(enabled: bool = True, **overrides: bool):
    """Temporarily force all flags to ``enabled`` (then apply overrides).

    ``with perf_mode(False):`` is "legacy mode": the pre-optimization
    code paths, used by the equivalence tests and the before/after
    benchmark cells.
    """
    saved = snapshot()
    try:
        set_all(enabled)
        for name, value in overrides.items():
            if name not in _FLAG_NAMES:
                raise ValueError(f"unknown perf flag {name!r}")
            setattr(PerfFlags, name, value)
        yield PerfFlags
    finally:
        restore(saved)
