"""Hosts: the unit of failure.

A :class:`Host` groups everything that dies together when a machine
crashes:

* its running :class:`~repro.sim.kernel.Process`\\ es (killed),
* its registered network services (unregistered -- peers see silence),
* its volatile state (dropped by whoever held it).

What survives is :class:`StableStorage` -- a per-host key/value store that
models disk.  Condor-G's entire fault-tolerance story (persistent job
queue, client-side GRAM logs, redirect files) lives in stable storage, so
the crash/restart split here is the load-bearing abstraction of the whole
reproduction.

Restart runs the host's registered *boot actions* in order; daemons that
are supposed to come back after a reboot (the Condor-G Scheduler, a site's
Gatekeeper) register themselves as boot actions.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from .errors import HostDown, SimulationError
from .fastcopy import fast_deepcopy

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Process, Simulator


class StableStorage:
    """Disk: a namespaced key/value store surviving host crashes.

    Values are deep-copied on write and read so that in-memory aliasing can
    never masquerade as persistence (a classic simulation bug: "recovering"
    state that would really have been lost).
    """

    def __init__(self) -> None:
        self._data: dict[str, dict[str, Any]] = {}

    def namespace(self, ns: str) -> "StableNamespace":
        return StableNamespace(self, ns)

    def put(self, ns: str, key: str, value: Any) -> None:
        self._data.setdefault(ns, {})[key] = fast_deepcopy(value)

    def get(self, ns: str, key: str, default: Any = None) -> Any:
        return fast_deepcopy(self._data.get(ns, {}).get(key, default))

    def delete(self, ns: str, key: str) -> None:
        self._data.get(ns, {}).pop(key, None)

    def keys(self, ns: str) -> list[str]:
        return sorted(self._data.get(ns, {}).keys())

    def items(self, ns: str) -> list[tuple[str, Any]]:
        return [(k, fast_deepcopy(v))
                for k, v in sorted(self._data.get(ns, {}).items())]

    def clear(self, ns: str) -> None:
        self._data.pop(ns, None)


class StableNamespace:
    """A view of one namespace of a :class:`StableStorage`."""

    def __init__(self, storage: StableStorage, ns: str):
        self._storage = storage
        self._ns = ns

    def put(self, key: str, value: Any) -> None:
        self._storage.put(self._ns, key, value)

    def get(self, key: str, default: Any = None) -> Any:
        return self._storage.get(self._ns, key, default)

    def delete(self, key: str) -> None:
        self._storage.delete(self._ns, key)

    def keys(self) -> list[str]:
        return self._storage.keys(self._ns)

    def items(self) -> list[tuple[str, Any]]:
        return self._storage.items(self._ns)

    def clear(self) -> None:
        self._storage.clear(self._ns)


class Host:
    """A machine in the simulated grid."""

    def __init__(self, sim: "Simulator", name: str, site: str = ""):
        if name in sim.hosts:
            raise SimulationError(f"duplicate host name {name!r}")
        self.sim = sim
        self.name = name
        self.site = site
        self.up = True
        self.stable = StableStorage()
        self.processes: set["Process"] = set()
        self.services: dict[str, object] = {}
        self.boot_actions: list[Callable[["Host"], None]] = []
        self.crash_count = 0
        sim.hosts[name] = self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.name} {'up' if self.up else 'DOWN'}>"

    # -- process / service bookkeeping ------------------------------------
    def _attach_process(self, proc: "Process") -> None:
        if not self.up:
            raise HostDown(f"cannot start process on crashed host {self.name}")
        self.processes.add(proc)

    def _detach_process(self, proc: "Process") -> None:
        self.processes.discard(proc)

    def register_service(self, name: str, service: object) -> None:
        if not self.up:
            raise HostDown(f"host {self.name} is down")
        self.services[name] = service

    def unregister_service(self, name: str) -> None:
        self.services.pop(name, None)

    def get_service(self, name: str) -> Optional[object]:
        return self.services.get(name) if self.up else None

    def add_boot_action(self, fn: Callable[["Host"], None]) -> None:
        """Register a function run (in order) each time the host restarts."""
        self.boot_actions.append(fn)

    # -- failure ------------------------------------------------------------
    def crash(self, cause: object = "crash") -> None:
        """Kill all processes and services; volatile state is gone."""
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        self.sim.trace.log(f"host:{self.name}", "crash", cause=str(cause))
        for proc in list(self.processes):
            proc.kill(cause=f"host {self.name} crashed")
        self.processes.clear()
        self.services.clear()

    def restart(self) -> None:
        """Bring the host back up and run boot actions (stable disk intact)."""
        if self.up:
            return
        self.up = True
        self.sim.trace.log(f"host:{self.name}", "restart")
        for fn in list(self.boot_actions):
            fn(self)

    def spawn(self, gen, name: str = "", daemon: bool = False) -> "Process":
        """Start a process bound to this host (dies if the host crashes)."""
        return self.sim.spawn(gen, name=name, host=self, daemon=daemon)
