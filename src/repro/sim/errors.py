"""Exception types used by the simulation kernel.

The kernel distinguishes three ways a process can stop abnormally:

* :class:`Interrupt` -- another process asked it to stop what it is doing
  (recoverable; the target may catch it and continue).
* :class:`ProcessKilled` -- the process was destroyed, typically because its
  host crashed.  Raised *in the waiters* of the dead process, never inside
  the dead process itself (its generator is simply closed).
* :class:`SimulationError` -- the kernel detected an inconsistency (e.g. an
  event triggered twice).
"""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Internal inconsistency in the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries an arbitrary, caller-supplied payload describing why.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Raised in waiters joined on a process that was destroyed."""

    def __init__(self, process_name: str = "?", cause: object = None):
        super().__init__(f"process {process_name} was killed ({cause!r})")
        self.process_name = process_name
        self.cause = cause


class HostDown(Exception):
    """An operation required a host that is currently crashed."""


class RPCError(Exception):
    """Base class for RPC-layer failures."""


class RPCTimeout(RPCError):
    """No response arrived within the caller's timeout."""


class ServiceUnavailable(RPCError):
    """The destination host is up but no such service is registered."""


class AuthenticationError(RPCError):
    """GSI authentication failed (bad/expired credential)."""


class AuthorizationError(RPCError):
    """Credential authenticated but is not authorized (no gridmap entry)."""


class RemoteError(RPCError):
    """The remote handler raised; carries the stringified remote exception."""

    def __init__(self, message: str, kind: str = "Exception"):
        super().__init__(message)
        self.kind = kind
