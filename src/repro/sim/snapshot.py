"""Checkpoint/restore for running simulations.

A :class:`SimSnapshot` is a *canonical, JSON-serializable fingerprint* of
everything that determines a testbed's future: the kernel event heap
(tombstone-free, ``_seq`` preserved), every named RNG stream's position
in creation order, per-host state (stable storage, services, live
process names), the network fabric (partitions, isolation, counters),
the :class:`~repro.sim.failures.FailureInjector` record, every daemon
reachable from the testbed roots, the metrics snapshot, and a trace
watermark -- plus the provenance ``(scenario, seed, plan, perf flags)``
needed to rebuild it.

What is deliberately *not* serialized: generator frames.  Every daemon
is a Python generator, and CPython cannot pickle or deep-copy a
suspended frame -- by design the chaos runner ships ``(scenario, seed)``
across process boundaries, never simulators.  Restore therefore comes in
three flavors, all honest about that constraint:

* **resume** -- keep the live testbed and simply ``run()`` past the
  snapshot point; ``run(0, t)`` then ``run(t, T)`` is exactly
  ``run(0, T)`` in this kernel, and :func:`capture` is side-effect-free,
  so segmented runs are bit-identical to uninterrupted ones.
* **rehydrate** (:func:`restore`) -- rebuild ``scenario.build(seed)``
  under the snapshot's recorded perf flags, re-apply the fault plan,
  replay to the snapshot time, and *verify* the resulting state
  fingerprint is bit-identical (raising :class:`SnapshotMismatch` with
  the first divergent path otherwise).  This is what makes a snapshot
  trustworthy across processes and machines.
* **fork** (:class:`ForkPoint`) -- hold a live testbed at the snapshot
  instant and evaluate candidate futures in ``os.fork()`` children:
  O(1) in-memory restore, used by shrink-from-snapshot to avoid
  replaying the pre-fault prefix for every ddmin candidate.

The contract (checked by ``tests/sim/test_snapshot_properties.py``):
``run(0, T)`` produces the same chaos run digest as ``run(0, t);
capture; restore; run(t, T)``, in both legacy and perf mode.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import random
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Optional, TYPE_CHECKING

from . import perf as _perf
from .errors import SimulationError
from .failures import FailureInjector
from .hosts import Host, StableStorage
from .kernel import Event, Process, Simulator, Timeout, _UNSET
from .network import Network
from .rng import RngRegistry
from .stats import MetricsRegistry
from .trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from ..grid.testbed import GridTestbed

SNAPSHOT_VERSION = 1

#: structures deeper than this are fingerprinted as a type tag; the cap
#: is generous (daemon state sits well above it) and deterministic, so
#: both sides of a comparison truncate identically.
_MAX_DEPTH = 16


class SnapshotError(SimulationError):
    """Snapshot machinery misuse (missing provenance, fork unavailable)."""


class SnapshotMismatch(SnapshotError):
    """A rehydrated testbed's state diverged from the snapshot.

    Carries ``divergence`` -- ``{"path": ..., "snapshot": ...,
    "rebuilt": ...}`` for the first differing leaf -- so the failure
    points at the guilty subsystem instead of just two hashes.
    """

    def __init__(self, message: str, divergence: Optional[dict] = None):
        super().__init__(message)
        self.divergence = divergence or {}


# -- canonical state walking --------------------------------------------------
#
# The walker reduces arbitrary object graphs to JSON-safe structure:
# primitives pass through (floats as their exact ``repr``), containers
# recurse deterministically (dict keys sorted, sets sorted by canonical
# form), known simulator types become stable tags (their state is
# covered by dedicated sections), and everything else is walked through
# ``__dict__``/``__slots__``.  Revisited objects become ``<ref:...>``
# tags: the visit order is deterministic, so two identical states
# produce identical ref patterns, and cycles terminate.

_TAGGED_TYPES = (Simulator, Network, Trace, MetricsRegistry, RngRegistry,
                 FailureInjector)


def _callable_tag(fn: Any) -> str:
    name = getattr(fn, "__qualname__", None) or type(fn).__name__
    return f"<callable {name}>"


def _slot_names(cls: type) -> list[str]:
    out: list[str] = []
    for klass in cls.__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        out.extend(s for s in slots if s not in ("__dict__", "__weakref__"))
    return out


def _canon(obj: Any, memo: dict[int, bool], depth: int = 0) -> Any:
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, Enum):
        return f"<{type(obj).__name__}.{obj.name}>"
    if depth > _MAX_DEPTH:
        return f"<deep:{type(obj).__name__}>"

    # Simulator infrastructure: stable tags, state covered elsewhere.
    if isinstance(obj, _TAGGED_TYPES):
        return f"<{type(obj).__name__}>"
    if isinstance(obj, random.Random):
        return "<Random>"          # positions live in the rng section
    if isinstance(obj, Host):
        return f"<Host {obj.name}>"
    if isinstance(obj, Process):
        return f"<Process {obj.name} {'alive' if obj._alive else 'dead'}>"
    if isinstance(obj, Event):
        state = "triggered" if obj.triggered else "pending"
        return f"<{type(obj).__name__} {obj.name} {state}>"
    if isinstance(obj, itertools.count):
        return repr(obj)           # "count(42)": deterministic
    if isinstance(obj, BaseException):
        return f"<{type(obj).__name__}: {obj}>"

    oid = id(obj)
    if oid in memo:
        return f"<ref:{type(obj).__name__}>"

    if isinstance(obj, dict):
        memo[oid] = True
        return {str(k): _canon(v, memo, depth + 1)
                for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple, deque)):
        memo[oid] = True
        return [_canon(v, memo, depth + 1) for v in obj]
    if isinstance(obj, (set, frozenset)):
        memo[oid] = True
        members = [_canon(v, memo, depth + 1) for v in obj]
        return sorted(members,
                      key=lambda m: json.dumps(m, sort_keys=True))
    if isinstance(obj, (bytes, bytearray)):
        return f"<bytes:{hashlib.sha256(bytes(obj)).hexdigest()[:16]}>"
    if isinstance(obj, StableStorage):
        memo[oid] = True
        return {"@type": "StableStorage",
                "@state": _canon(obj._data, memo, depth + 1)}
    if callable(obj) and not hasattr(obj, "__dict__"):
        return _callable_tag(obj)
    if hasattr(obj, "gi_frame"):   # generator object
        return f"<generator {getattr(obj, '__name__', 'gen')}>"

    # Generic object: walk instance state.
    state = getattr(obj, "__dict__", None)
    if state is None:
        names = _slot_names(type(obj))
        state = {n: getattr(obj, n) for n in names if hasattr(obj, n)}
    if not isinstance(state, dict):   # e.g. modules, odd proxies
        return f"<{type(obj).__name__}>"
    memo[oid] = True
    if callable(obj) and not state:
        return _callable_tag(obj)
    return {"@type": type(obj).__name__,
            "@state": {k: _canon(v, memo, depth + 1)
                       for k, v in sorted(state.items())}}


# -- fingerprint sections -----------------------------------------------------

def _event_value_tag(ev: Event) -> Any:
    value = ev._pending_value if isinstance(ev, Timeout) else ev._value
    if value is _UNSET or value is None:
        return None
    if isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return repr(value)
    return f"<{type(value).__name__}>"


def kernel_fingerprint(sim: Simulator) -> dict:
    """Canonical view of the event heap and kernel counters.

    Calls :meth:`Simulator.compact_heap` first: dropping tombstones is
    behaviour-neutral (cancelled entries are skipped on pop in every
    mode), and without it the raw heap bytes depend on whether -- and
    when -- automatic compaction last ran, which varies with
    ``PerfFlags.heap_compaction``.
    """
    sim.compact_heap()
    heap = [[repr(t), seq, type(ev).__name__, ev.name,
             _event_value_tag(ev)]
            for t, seq, ev in sorted(sim._heap,
                                     key=lambda entry: entry[:2])]
    return {
        "now": repr(sim.now),
        "seq": sim._seq,
        "heap": heap,
        "rpc_tokens": repr(getattr(sim, "_rpc_tokens", None)),
        "failures": [[proc.name, type(exc).__name__]
                     for proc, exc in sim._failures],
    }


def _host_fingerprint(host: Host, memo: dict[int, bool]) -> dict:
    return {
        "up": host.up,
        "site": host.site,
        "crash_count": host.crash_count,
        "stable": _canon(host.stable._data, memo, 1),
        "services": {name: _canon(svc, memo, 1)
                     for name, svc in sorted(host.services.items())},
        "processes": sorted(p.name for p in host.processes),
        "boot_actions": [_callable_tag(fn) for fn in host.boot_actions],
    }


def _network_fingerprint(net: Optional[Network]) -> Optional[dict]:
    if net is None:
        return None
    return {
        "latency": repr(net.latency),
        "jitter": repr(net.jitter),
        "loss_rate": repr(net.loss_rate),
        "lan_factor": repr(net.lan_factor),
        "partitions": sorted("|".join(sorted(pair))
                             for pair in net._partitions),
        "isolated": sorted(net._isolated),
        "link_latency": {"|".join(sorted(pair)): repr(value)
                         for pair, value in net._link_latency.items()},
        "sent": net.sent,
        "delivered": net.delivered,
        "dropped": net.dropped,
    }


def _trace_watermark(trace: Trace) -> dict:
    h = hashlib.sha256()
    memo: dict[int, bool] = {}
    for rec in trace._records:
        details = json.dumps(_canon(rec.details, memo, 8), sort_keys=True)
        memo.clear()
        h.update(f"{rec.time!r}|{rec.component}|{rec.event}|{details}\n"
                 .encode())
    return {
        "records": len(trace._records),
        "seq": trace._seq,
        "dropped": trace.dropped,
        "sha256": h.hexdigest(),
    }


def sim_fingerprint(sim: Simulator) -> dict:
    """Canonical state of a bare :class:`Simulator` (no testbed roots)."""
    memo: dict[int, bool] = {}
    return {
        "version": SNAPSHOT_VERSION,
        "kernel": kernel_fingerprint(sim),
        "rng": [[name, _canon(list(state), memo, 1)]
                for name, state in sim.rng.snapshot_state()],
        "network": _network_fingerprint(sim.network),
        "hosts": {name: _host_fingerprint(host, memo)
                  for name, host in sorted(sim.hosts.items())},
        "metrics": _canon(sim.metrics.snapshot(), memo, 0),
        "trace": _trace_watermark(sim.trace),
        "perf_flags": _perf.snapshot(),
    }


def state_roots(tb: "GridTestbed") -> dict[str, Any]:
    """The testbed attributes that hold daemon/topology state."""
    return {
        "sites": tb.sites,
        "users": tb.users,
        "agents": tb.agents,
        "factories": tb.factories,
        "traffic": tb.traffic,
        "giis": tb.giis,
        "repo": tb.repo,
        "myproxy": tb.myproxy,
        "data_services": tb.data_services,
        "replica_catalog": tb.replica_catalog,
        "transfer_scheduler": tb.transfer_scheduler,
    }


def fingerprint(tb: "GridTestbed") -> dict:
    """Full canonical state of a testbed, as JSON-safe structure.

    Side-effect-free with respect to anything the run digest hashes: no
    trace records, no metric bumps, no RNG draws.  (It does compact heap
    tombstones, which is invisible to event ordering in every mode.)
    """
    fp = sim_fingerprint(tb.sim)
    memo: dict[int, bool] = {}
    fp["injector"] = [ev.to_dict() for ev in tb.failures.injected]
    fp["testbed"] = _canon(state_roots(tb), memo, 0)
    return _thaw(fp)


def _thaw(obj: Any) -> Any:
    """Normalize through JSON so stored and fresh fingerprints compare
    structurally (tuples become lists, float leaves are already reprs)."""
    return json.loads(json.dumps(obj, sort_keys=True))


def _digest_of(fp: dict) -> str:
    blob = json.dumps(fp, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def state_digest(tb: "GridTestbed") -> str:
    """SHA-256 over the full canonical state fingerprint."""
    return _digest_of(fingerprint(tb))


def _first_diff(a: Any, b: Any, path: str = "$") -> Optional[dict]:
    if type(a) is not type(b):
        return {"path": path, "snapshot": f"<{type(a).__name__}> {a!r:.80}",
                "rebuilt": f"<{type(b).__name__}> {b!r:.80}"}
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                return {"path": f"{path}.{key}", "snapshot": "<absent>",
                        "rebuilt": repr(b[key])[:200]}
            if key not in b:
                return {"path": f"{path}.{key}",
                        "snapshot": repr(a[key])[:200],
                        "rebuilt": "<absent>"}
            found = _first_diff(a[key], b[key], f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(a, list):
        for i, (va, vb) in enumerate(zip(a, b)):
            found = _first_diff(va, vb, f"{path}[{i}]")
            if found:
                return found
        if len(a) != len(b):
            return {"path": f"{path}.length", "snapshot": len(a),
                    "rebuilt": len(b)}
        return None
    if a != b:
        return {"path": path, "snapshot": repr(a)[:200],
                "rebuilt": repr(b)[:200]}
    return None


# -- the snapshot object ------------------------------------------------------

@dataclass
class SimSnapshot:
    """A captured testbed state plus the provenance to rebuild it."""

    version: int
    scenario: Optional[str]
    seed: Optional[int]
    plan: Optional[dict]
    time: float
    perf_flags: dict
    fingerprint: dict
    digest: str

    def to_dict(self) -> dict:
        return {
            "version": self.version, "scenario": self.scenario,
            "seed": self.seed, "plan": self.plan, "time": self.time,
            "perf_flags": dict(self.perf_flags),
            "fingerprint": self.fingerprint, "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimSnapshot":
        version = data.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(f"unsupported snapshot version {version!r}")
        return cls(version=version, scenario=data.get("scenario"),
                   seed=data.get("seed"), plan=data.get("plan"),
                   time=float(data["time"]),
                   perf_flags=dict(data["perf_flags"]),
                   fingerprint=data["fingerprint"],
                   digest=str(data["digest"]))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SimSnapshot":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=1))

    @classmethod
    def load(cls, path: str) -> "SimSnapshot":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def capture(tb: "GridTestbed", scenario: Optional[str] = None,
            seed: Optional[int] = None, plan: Any = None) -> SimSnapshot:
    """Snapshot `tb` right now.

    ``scenario``/``seed``/``plan`` are the provenance :func:`restore`
    rebuilds from; ``seed`` defaults to the testbed config's seed.
    ``plan`` may be a FaultPlan (anything with ``to_dict``) or a dict.
    """
    if plan is not None and hasattr(plan, "to_dict"):
        plan = plan.to_dict()
    if seed is None:
        seed = tb.config.seed
    fp = fingerprint(tb)
    return SimSnapshot(
        version=SNAPSHOT_VERSION, scenario=scenario, seed=seed,
        plan=plan, time=tb.sim.now, perf_flags=_perf.snapshot(),
        fingerprint=fp, digest=_digest_of(fp))


def verify(tb: "GridTestbed", snap: SimSnapshot) -> None:
    """Assert `tb`'s state is bit-identical to the snapshot's.

    Raises :class:`SnapshotMismatch` naming the first divergent path.
    Comparison is same-mode only: the perf flags in force now must match
    the snapshot's (``rpc_inline`` changes which kernel events exist, so
    cross-mode states are legitimately different even when the run
    digest contract holds).
    """
    current_flags = _perf.snapshot()
    if current_flags != snap.perf_flags:
        raise SnapshotMismatch(
            "perf flags differ from the snapshot's: state fingerprints "
            f"are only comparable in the same mode (now={current_flags}, "
            f"snapshot={snap.perf_flags})")
    fresh = fingerprint(tb)
    if fresh == snap.fingerprint:
        return
    divergence = _first_diff(snap.fingerprint, fresh) or {}
    raise SnapshotMismatch(
        f"state diverged from snapshot at t={snap.time!r}: "
        f"{divergence.get('path', '?')}: "
        f"snapshot={divergence.get('snapshot')!r} "
        f"rebuilt={divergence.get('rebuilt')!r}", divergence)


def restore(snap: SimSnapshot) -> "GridTestbed":
    """Rebuild a live testbed in the snapshot's exact state.

    Generator frames cannot be serialized, so restore *rehydrates*:
    rebuild ``scenario.build(seed)`` under the snapshot's recorded perf
    flags, re-apply the fault plan, replay to the snapshot time, then
    :func:`verify` bit-identity -- failing loudly rather than returning
    a silently-divergent simulation.  Note the perf flags are left in
    force (the resumed run must continue in the snapshot's mode); use
    ``perf_mode()`` around the whole resume if you need them restored.
    """
    if snap.scenario is None or snap.seed is None:
        raise SnapshotError(
            "snapshot carries no (scenario, seed) provenance; capture() "
            "with scenario=... to make it restorable")
    from ..grid.scenarios import get_scenario

    _perf.restore(snap.perf_flags)
    tb = get_scenario(snap.scenario).build(snap.seed)
    if snap.plan and snap.plan.get("events"):
        from ..chaos.plan import FaultPlan

        FaultPlan.from_dict(snap.plan).apply(tb)
    tb.run(until=snap.time)
    verify(tb, snap)
    return tb


def run_segmented(scenario_name: str, seed: int,
                  boundaries: list[float],
                  plan: Any = None) -> tuple["GridTestbed",
                                             list[SimSnapshot]]:
    """Run a scenario as resumable segments, snapshotting each boundary.

    Returns ``(testbed, snapshots)`` with one snapshot per boundary;
    the testbed has run to the last boundary.  Any snapshot can later
    be handed to :func:`restore` to pick the run up in a fresh process.
    """
    from ..grid.scenarios import get_scenario

    tb = get_scenario(scenario_name).build(seed)
    if plan is not None:
        plan_obj = plan
        if isinstance(plan, dict):
            from ..chaos.plan import FaultPlan

            plan_obj = FaultPlan.from_dict(plan)
        plan_obj.apply(tb)
    snaps = []
    for boundary in boundaries:
        tb.run(until=boundary)
        snaps.append(capture(tb, scenario=scenario_name, seed=seed,
                             plan=plan))
    return tb, snaps


# -- fork-based O(1) restore --------------------------------------------------

class ForkPoint:
    """Evaluate candidate futures of a live testbed without replaying.

    Holds the *parent* process at the snapshot instant; each
    :meth:`eval` forks a child, runs ``fn()`` against the (copy-on-
    write) simulator state, and ships the picklable result back over a
    pipe.  The parent never advances, so every evaluation starts from
    exactly the same state -- a true O(1) in-memory restore, and the
    only way to resume a generator-based simulation without replaying
    it.  The child exits with ``os._exit`` so no atexit/coverage hooks
    of the host process run twice.

    POSIX-only (``os.fork``); callers should check :meth:`supported`
    and fall back to replay-from-zero.
    """

    @staticmethod
    def supported() -> bool:
        return hasattr(os, "fork")

    def __init__(self) -> None:
        if not self.supported():
            raise SnapshotError("os.fork is unavailable on this platform")
        self.evaluations = 0

    def eval(self, fn: Callable[[], Any]) -> Any:
        self.evaluations += 1
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:   # child
            try:
                os.close(read_fd)
                try:
                    payload = pickle.dumps((True, fn()))
                except BaseException as exc:  # noqa: BLE001 - report upward
                    payload = pickle.dumps(
                        (False, f"{type(exc).__name__}: {exc}"))
                with os.fdopen(write_fd, "wb") as pipe:
                    pipe.write(len(payload).to_bytes(8, "big"))
                    pipe.write(payload)
            finally:
                os._exit(0)
        os.close(write_fd)
        with os.fdopen(read_fd, "rb") as pipe:
            header = pipe.read(8)
            size = int.from_bytes(header, "big") if len(header) == 8 else -1
            payload = pipe.read(size) if size >= 0 else b""
        os.waitpid(pid, 0)
        if size < 0 or len(payload) != size:
            raise SnapshotError("forked evaluation died before reporting")
        ok, value = pickle.loads(payload)
        if not ok:
            raise SnapshotError(f"forked evaluation failed: {value}")
        return value


__all__ = [
    "ForkPoint", "SNAPSHOT_VERSION", "SimSnapshot", "SnapshotError",
    "SnapshotMismatch", "capture", "fingerprint", "kernel_fingerprint",
    "restore", "run_segmented", "sim_fingerprint", "state_digest",
    "state_roots", "verify",
]
