"""Structured event tracing.

Every subsystem reports interesting transitions (`sim.trace.log(component,
event, **details)`), producing a single ordered record of the run.  The
Figure-1/Figure-2 benchmarks assert the component interaction sequence
directly against this trace, and the metrics module derives concurrency
timelines from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


@dataclass(frozen=True)
class TraceRecord:
    time: float
    component: str
    event: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:12.3f}] {self.component:<24} {self.event:<28} {kv}"


class Trace:
    """Append-only log of :class:`TraceRecord` with simple query helpers."""

    def __init__(self, sim: "Simulator", enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def log(self, component: str, event: str, **details: Any) -> None:
        if not self.enabled:
            return
        rec = TraceRecord(self.sim.now, component, event, details)
        self.records.append(rec)
        for sub in self._subscribers:
            sub(rec)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        self._subscribers.append(fn)

    # -- queries ----------------------------------------------------------
    def select(
        self,
        component: Optional[str] = None,
        event: Optional[str] = None,
        **match: Any,
    ) -> list[TraceRecord]:
        out = []
        for rec in self.records:
            if component is not None and rec.component != component:
                continue
            if event is not None and rec.event != event:
                continue
            if any(rec.details.get(k) != v for k, v in match.items()):
                continue
            out.append(rec)
        return out

    def events(self, component: Optional[str] = None) -> list[str]:
        """Ordered event names, optionally restricted to one component."""
        return [r.event for r in self.records
                if component is None or r.component == component]

    def contains_sequence(self, *events: str, component: Optional[str] = None
                          ) -> bool:
        """True if `events` occur in order (not necessarily adjacent)."""
        it: Iterator[str] = iter(self.events(component))
        return all(ev in it for ev in events)

    def dump(self, limit: Optional[int] = None) -> str:
        recs = self.records if limit is None else self.records[:limit]
        return "\n".join(str(r) for r in recs)

    def clear(self) -> None:
        self.records.clear()
