"""Structured event tracing.

Every subsystem reports interesting transitions (`sim.trace.log(component,
event, **details)`), producing a single ordered record of the run.  The
Figure-1/Figure-2 benchmarks assert the component interaction sequence
directly against this trace, and the metrics module derives concurrency
timelines from it.

The trace is *indexed*: records are bucketed per component, per event,
and per ``(component, event)`` pair, so :meth:`Trace.select` and
:meth:`Trace.contains_sequence` answer from the relevant bucket instead
of scanning the whole run.  With ``PerfFlags.lazy_trace_index`` on
(default) the buckets are built lazily on first query rather than per
``log()`` call, which keeps the hot logging path to a single append.  It can also be
*bounded* (``max_records``): the oldest records are evicted ring-buffer
style (``dropped`` counts them) while the indexes stay consistent, so
long-running simulations hold memory constant.  Subscribers still see
every record as it is logged, bounded or not -- streaming consumers
(metrics, live dashboards) never miss anything.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional, TYPE_CHECKING

from .perf import PerfFlags

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    time: float
    component: str
    event: str
    details: dict[str, Any] = field(default_factory=dict)
    seq: int = 0        # global log order (total, unlike `time`)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:12.3f}] {self.component:<24} {self.event:<28} {kv}"


class Trace:
    """Indexed (and optionally bounded) log of :class:`TraceRecord`."""

    def __init__(self, sim: "Simulator", enabled: bool = True,
                 max_records: Optional[int] = None):
        self.sim = sim
        self.enabled = enabled
        self.max_records = max_records
        self.dropped = 0
        self._records: deque[TraceRecord] = deque()
        self._by_key: dict[tuple[str, str], deque[TraceRecord]] = {}
        self._by_component: dict[str, deque[TraceRecord]] = {}
        self._by_event: dict[str, deque[TraceRecord]] = {}
        # Records logged but not yet folded into the three indexes: a
        # suffix of _records (indexing is deferred to the first query,
        # so runs that are never queried never pay for the buckets).
        self._pending: deque[TraceRecord] = deque()
        self._seq = 0
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    @property
    def records(self) -> list[TraceRecord]:
        """The retained records, oldest first (a copy; don't mutate)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def log(self, component: str, event: str, **details: Any) -> None:
        if not self.enabled:
            return
        self._seq += 1
        rec = TraceRecord(self.sim.now, component, event, details, self._seq)
        self._records.append(rec)
        if PerfFlags.lazy_trace_index:
            self._pending.append(rec)
        else:
            self._index_one(rec)
        if self.max_records is not None:
            while len(self._records) > self.max_records:
                self._evict_oldest()
        for sub in self._subscribers:
            sub(rec)

    def _index_one(self, rec: TraceRecord) -> None:
        self._by_key.setdefault((rec.component, rec.event), deque()).append(rec)
        self._by_component.setdefault(rec.component, deque()).append(rec)
        self._by_event.setdefault(rec.event, deque()).append(rec)

    def _ensure_index(self) -> None:
        """Fold any unindexed records into the query indexes."""
        pending = self._pending
        while pending:
            self._index_one(pending.popleft())

    def _evict_oldest(self) -> None:
        # The globally oldest record is also the oldest entry of each of
        # its index buckets (buckets are filled in log order), so every
        # eviction is an O(1) popleft from all four deques.  With lazy
        # indexing, records still sitting in _pending (a suffix of
        # _records) were never indexed, so when eviction catches up to
        # them only _pending needs the popleft.
        old = self._records.popleft()
        self.dropped += 1
        if self._pending and self._pending[0] is old:
            self._pending.popleft()
            return
        for index, key in (
            (self._by_key, (old.component, old.event)),
            (self._by_component, old.component),
            (self._by_event, old.event),
        ):
            bucket = index[key]
            bucket.popleft()
            if not bucket:
                del index[key]

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        self._subscribers.append(fn)

    # -- queries ----------------------------------------------------------
    def select(
        self,
        component: Optional[str] = None,
        event: Optional[str] = None,
        **match: Any,
    ) -> list[TraceRecord]:
        self._ensure_index()
        if component is not None and event is not None:
            base: Iterable[TraceRecord] = \
                self._by_key.get((component, event), ())
        elif component is not None:
            base = self._by_component.get(component, ())
        elif event is not None:
            base = self._by_event.get(event, ())
        else:
            base = self._records
        if not match:
            return list(base)
        return [rec for rec in base
                if all(rec.details.get(k) == v for k, v in match.items())]

    def events(self, component: Optional[str] = None) -> list[str]:
        """Ordered event names, optionally restricted to one component."""
        if component is not None:
            self._ensure_index()
            return [r.event for r in self._by_component.get(component, ())]
        return [r.event for r in self._records]

    def contains_sequence(self, *events: str, component: Optional[str] = None
                          ) -> bool:
        """True if `events` occur in order (not necessarily adjacent)."""
        it: Iterator[str] = iter(self.events(component))
        return all(ev in it for ev in events)

    def components(self) -> list[str]:
        """Component names with retained records, in first-seen order."""
        self._ensure_index()
        return list(self._by_component)

    def iter_prefix(self, component_prefix: str) -> Iterator[TraceRecord]:
        """Records of every component matching the prefix, in log order.

        Merges the matching per-component buckets by global sequence
        number, so only components under the prefix are ever touched.
        """
        self._ensure_index()
        matching = [bucket for comp, bucket in self._by_component.items()
                    if comp.startswith(component_prefix)]
        if not matching:
            return iter(())
        if len(matching) == 1:
            return iter(matching[0])
        return heapq.merge(*matching, key=lambda r: r.seq)

    def end_time(self) -> Optional[float]:
        """Time of the newest retained record (None when empty)."""
        return self._records[-1].time if self._records else None

    def dump(self, limit: Optional[int] = None) -> str:
        recs = self.records if limit is None else self.records[:limit]
        return "\n".join(str(r) for r in recs)

    def clear(self) -> None:
        self._records.clear()
        self._by_key.clear()
        self._by_component.clear()
        self._by_event.clear()
        self._pending.clear()
        self.dropped = 0
