"""Deterministic named random streams.

Every stochastic component draws from its own named stream, derived from a
single root seed, so that adding randomness to one component never perturbs
another ("stream independence") and every run is reproducible.
"""

from __future__ import annotations

import hashlib
import random


def _derive_seed(root: int, name: str) -> int:
    digest = hashlib.sha256(f"{root}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Hands out :class:`random.Random` streams keyed by name."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def __call__(self, name: str) -> random.Random:
        return self.stream(name)
