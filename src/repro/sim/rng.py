"""Deterministic named random streams.

Every stochastic component draws from its own named stream, derived from a
single root seed, so that adding randomness to one component never perturbs
another ("stream independence") and every run is reproducible.
"""

from __future__ import annotations

import hashlib
import random


def _derive_seed(root: int, name: str) -> int:
    digest = hashlib.sha256(f"{root}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Hands out :class:`random.Random` streams keyed by name."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def __call__(self, name: str) -> random.Random:
        return self.stream(name)

    # -- snapshot support -------------------------------------------------
    def snapshot_state(self) -> list[tuple[str, tuple]]:
        """Every stream's ``getstate()`` in creation order.

        Creation order matters: streams are created on demand, so the
        registry dict's insertion order is itself part of the state --
        a restore that recreated streams lazily in whatever order the
        resumed run touched them would silently accept a registry whose
        future on-demand streams diverge.  Recording the order lets
        :meth:`restore_state` rehydrate eagerly and verify.
        """
        return [(name, rng.getstate()) for name, rng in self._streams.items()]

    def restore_state(self, states: list[tuple[str, tuple]]) -> None:
        """Eagerly rehydrate every recorded stream, preserving order.

        Fails loudly if this registry already holds streams that are not
        a prefix of the recorded creation order -- that means the caller
        touched streams before restoring, and on-demand creation after
        this point could no longer reproduce the snapshotted run.
        Streams *not* recorded are still derived on demand from
        ``root_seed`` exactly as in the original run.
        """
        recorded = [name for name, _ in states]
        existing = list(self._streams)
        if existing != recorded[: len(existing)]:
            raise RuntimeError(
                "RngRegistry.restore_state: existing stream creation order "
                f"{existing!r} is not a prefix of the recorded order "
                f"{recorded!r}; restore before touching any streams")
        for name, state in states:
            rng = self._streams.get(name)
            if rng is None:
                rng = random.Random()
                self._streams[name] = rng
            rng.setstate(_as_rng_state(state))


def _as_rng_state(state) -> tuple:
    """Rebuild the exact ``random.Random`` state tuple from JSON-thawed data.

    ``getstate()`` returns ``(version, tuple[int, ...], gauss_next)``;
    a JSON round-trip turns the tuples into lists, which ``setstate``
    rejects, so coerce structurally."""
    version, internal, gauss_next = state
    return (version, tuple(internal), gauss_next)
