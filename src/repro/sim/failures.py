"""Failure injection.

Experiments schedule crashes, restarts, and network partitions either at
fixed times or stochastically.  All schedules draw from named RNG streams,
so a failure scenario is fully determined by the simulator seed.

The four failure classes of Condor-G (§4.2) map onto:

* ``crash_process`` -- kill one daemon (e.g. a single JobManager);
* ``crash_host`` / ``restart_host`` -- kill every daemon on a machine and
  lose its volatile state (gatekeeper node, submit machine);
* ``partition`` / ``heal`` -- network failure between two machines
  (indistinguishable, to the observer, from the remote machine crashing --
  which is exactly the ambiguity §4.2 describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .hosts import Host
    from .kernel import Simulator


@dataclass
class FailureEvent:
    time: float
    kind: str
    target: str
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind,
                "target": self.target, "extra": dict(self.extra)}


class FailureInjector:
    """Schedules crashes/restarts/partitions against a simulator.

    All the ``*_at`` methods arm at *absolute* simulated times (via
    ``Simulator.schedule(at=...)``): a fault armed mid-run fires at
    exactly the requested instant, bit-identical to the same fault armed
    at t=0.  A relative ``now + (t - now)`` round-trip can land one ulp
    off, which is enough to break snapshot/restore digest equivalence.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.injected: list[FailureEvent] = []

    def _at(self, time: float, fn: Callable[[], None]) -> None:
        self.sim.schedule(0.0, fn, at=max(self.sim.now, time))

    # -- deterministic schedules ---------------------------------------------
    def crash_host_at(self, time: float, host: "Host",
                      down_for: Optional[float] = None) -> None:
        """Crash `host` at `time`; restart after `down_for` if given."""
        self._at(time, lambda: self._crash(host))
        if down_for is not None:
            self.restart_host_at(time + down_for, host)

    def restart_host_at(self, time: float, host: "Host") -> None:
        self._at(time, lambda: self._restart(host))

    def partition_at(self, time: float, a: str, b: str,
                     heal_after: Optional[float] = None) -> None:
        self._at(time, lambda: self._partition(a, b))
        if heal_after is not None:
            self._at(time + heal_after, lambda: self._heal(a, b))

    def isolate_at(self, time: float, host: str,
                   rejoin_after: Optional[float] = None) -> None:
        self._at(time, lambda: self._isolate(host))
        if rejoin_after is not None:
            self._at(time + rejoin_after, lambda: self._rejoin(host))

    def crash_service_at(self, time: float, host: "Host",
                         prefix: str) -> None:
        """Kill the first service on `host` whose name matches `prefix`
        (the ``crash_process`` failure class: one daemon, e.g. a single
        JobManager, dies while its machine stays up)."""
        self._at(time, lambda: self._crash_service(host, prefix))

    def custom_at(self, time: float, kind: str, target: str,
                  action: Callable[[], None], **extra) -> None:
        """Schedule an arbitrary injected fault through the recording
        internals, so higher-level fault classes (e.g. proxy expiry) show
        up in ``self.injected`` next to crashes and partitions."""
        def fire() -> None:
            self.injected.append(
                FailureEvent(self.sim.now, kind, target, dict(extra)))
            self.sim.trace.log("failures", kind, target=target, **extra)
            action()

        self._at(time, fire)

    # -- stochastic schedules ---------------------------------------------
    def random_crashes(
        self,
        host: "Host",
        mtbf: float,
        downtime: float,
        horizon: float,
        stream: str = "failures",
    ) -> None:
        """Poisson crash process: exponential(mtbf) up-times, fixed downtime."""
        rng = self.sim.rng.stream(f"{stream}:{host.name}")
        t = self.sim.now + rng.expovariate(1.0 / mtbf)
        while t < horizon:
            self.crash_host_at(t, host, down_for=downtime)
            t += downtime + rng.expovariate(1.0 / mtbf)

    def random_partitions(
        self,
        a: str,
        b: str,
        mtbf: float,
        duration: float,
        horizon: float,
        stream: str = "failures",
    ) -> None:
        """Poisson partition process between two hosts: exponential(mtbf)
        connected periods, fixed-length outages (the stochastic sibling of
        :meth:`random_crashes`)."""
        rng = self.sim.rng.stream(f"{stream}:{a}|{b}")
        t = self.sim.now + rng.expovariate(1.0 / mtbf)
        while t < horizon:
            self.partition_at(t, a, b, heal_after=duration)
            t += duration + rng.expovariate(1.0 / mtbf)

    # -- internals ------------------------------------------------------------
    def _crash(self, host: "Host") -> None:
        self.injected.append(FailureEvent(self.sim.now, "crash", host.name))
        host.crash(cause="injected")

    def _restart(self, host: "Host") -> None:
        self.injected.append(FailureEvent(self.sim.now, "restart", host.name))
        host.restart()

    def _partition(self, a: str, b: str) -> None:
        self.injected.append(
            FailureEvent(self.sim.now, "partition", f"{a}|{b}"))
        self.sim.network.partition(a, b)

    def _heal(self, a: str, b: str) -> None:
        self.injected.append(FailureEvent(self.sim.now, "heal", f"{a}|{b}"))
        self.sim.network.heal(a, b)

    def _isolate(self, host: str) -> None:
        self.injected.append(FailureEvent(self.sim.now, "isolate", host))
        self.sim.network.isolate(host)

    def _rejoin(self, host: str) -> None:
        self.injected.append(FailureEvent(self.sim.now, "rejoin", host))
        self.sim.network.rejoin(host)

    def _crash_service(self, host: "Host", prefix: str) -> None:
        for name in sorted(host.services):
            if name.startswith(prefix):
                service = host.services[name]
                self.injected.append(FailureEvent(
                    self.sim.now, "crash_service", f"{host.name}:{name}"))
                crash = getattr(service, "crash", None)
                if crash is not None:
                    crash()
                else:  # plain service: silently drop off the network
                    host.unregister_service(name)
                return
        self.injected.append(FailureEvent(
            self.sim.now, "crash_service_miss", f"{host.name}:{prefix}"))
