"""Failure injection.

Experiments schedule crashes, restarts, and network partitions either at
fixed times or stochastically.  All schedules draw from named RNG streams,
so a failure scenario is fully determined by the simulator seed.

The four failure classes of Condor-G (§4.2) map onto:

* ``crash_process`` -- kill one daemon (e.g. a single JobManager);
* ``crash_host`` / ``restart_host`` -- kill every daemon on a machine and
  lose its volatile state (gatekeeper node, submit machine);
* ``partition`` / ``heal`` -- network failure between two machines
  (indistinguishable, to the observer, from the remote machine crashing --
  which is exactly the ambiguity §4.2 describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .hosts import Host
    from .kernel import Simulator


@dataclass
class FailureEvent:
    time: float
    kind: str
    target: str
    extra: dict = field(default_factory=dict)


class FailureInjector:
    """Schedules crashes/restarts/partitions against a simulator."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.injected: list[FailureEvent] = []

    # -- deterministic schedules ---------------------------------------------
    def crash_host_at(self, time: float, host: "Host",
                      down_for: Optional[float] = None) -> None:
        """Crash `host` at `time`; restart after `down_for` if given."""
        self.sim.schedule(max(0.0, time - self.sim.now),
                          lambda: self._crash(host))
        if down_for is not None:
            self.restart_host_at(time + down_for, host)

    def restart_host_at(self, time: float, host: "Host") -> None:
        self.sim.schedule(max(0.0, time - self.sim.now),
                          lambda: self._restart(host))

    def partition_at(self, time: float, a: str, b: str,
                     heal_after: Optional[float] = None) -> None:
        net = self.sim.network
        self.sim.schedule(max(0.0, time - self.sim.now),
                          lambda: self._partition(a, b))
        if heal_after is not None:
            self.sim.schedule(max(0.0, time + heal_after - self.sim.now),
                              lambda: net.heal(a, b))

    def isolate_at(self, time: float, host: str,
                   rejoin_after: Optional[float] = None) -> None:
        net = self.sim.network
        self.sim.schedule(max(0.0, time - self.sim.now),
                          lambda: self._isolate(host))
        if rejoin_after is not None:
            self.sim.schedule(
                max(0.0, time + rejoin_after - self.sim.now),
                lambda: net.rejoin(host))

    # -- stochastic schedules ---------------------------------------------
    def random_crashes(
        self,
        host: "Host",
        mtbf: float,
        downtime: float,
        horizon: float,
        stream: str = "failures",
    ) -> None:
        """Poisson crash process: exponential(mtbf) up-times, fixed downtime."""
        rng = self.sim.rng.stream(f"{stream}:{host.name}")
        t = self.sim.now + rng.expovariate(1.0 / mtbf)
        while t < horizon:
            self.crash_host_at(t, host, down_for=downtime)
            t += downtime + rng.expovariate(1.0 / mtbf)

    # -- internals ------------------------------------------------------------
    def _crash(self, host: "Host") -> None:
        self.injected.append(FailureEvent(self.sim.now, "crash", host.name))
        host.crash(cause="injected")

    def _restart(self, host: "Host") -> None:
        self.injected.append(FailureEvent(self.sim.now, "restart", host.name))
        host.restart()

    def _partition(self, a: str, b: str) -> None:
        self.injected.append(
            FailureEvent(self.sim.now, "partition", f"{a}|{b}"))
        self.sim.network.partition(a, b)

    def _isolate(self, host: str) -> None:
        self.injected.append(FailureEvent(self.sim.now, "isolate", host))
        self.sim.network.isolate(host)
