"""Simulated network: latency, jitter, loss, and partitions.

The network moves *datagrams* between named services on hosts.  Delivery is
best-effort, exactly matching the failure model Condor-G's protocols were
designed for:

* the destination host may be down -> silent drop;
* a partition may separate the endpoints -> silent drop;
* the loss rate may eat the message -> silent drop;
* otherwise the message arrives after ``latency + U(0, jitter)`` seconds,
  evaluated per-message from the ``"network"`` RNG stream.

Anything request/response-shaped is layered on top in :mod:`repro.sim.rpc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from .errors import SimulationError
from .fastcopy import fast_deepcopy

if TYPE_CHECKING:  # pragma: no cover
    from .hosts import Host
    from .kernel import Simulator


@dataclass
class Datagram:
    src: str                     # source host name
    dst: str                     # destination host name
    service: str                 # destination service name
    payload: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = self.payload.get("kind", "?")
        return f"<Datagram {self.src}->{self.dst}/{self.service} {kind}>"


class Network:
    """The single network fabric of a simulation."""

    def __init__(
        self,
        sim: "Simulator",
        latency: float = 0.05,
        jitter: float = 0.01,
        loss_rate: float = 0.0,
    ):
        if sim.network is not None:
            raise SimulationError("simulator already has a network")
        self.sim = sim
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        # Traffic within one site rides the LAN at this fraction of the
        # WAN latency (and is never randomly lost).
        self.lan_factor = 0.2
        self._rng = sim.rng.stream("network")
        # Pairs of host names that cannot exchange messages.
        self._partitions: set[frozenset[str]] = set()
        # Per-host-name isolation (cuts a host off from everyone).
        self._isolated: set[str] = set()
        # Per-pair latency overrides (host or site names, unordered).
        self._link_latency: dict[frozenset[str], float] = {}
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        sim.network = self

    # -- partitions ---------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Block traffic (both directions) between hosts named `a` and `b`."""
        self._partitions.add(frozenset((a, b)))
        self.sim.trace.log("network", "partition", a=a, b=b)

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))
        self.sim.trace.log("network", "heal", a=a, b=b)

    def isolate(self, host: str) -> None:
        """Cut a host off from the entire network."""
        self._isolated.add(host)
        self.sim.trace.log("network", "isolate", host=host)

    def rejoin(self, host: str) -> None:
        self._isolated.discard(host)
        self.sim.trace.log("network", "rejoin", host=host)

    def reachable(self, src: str, dst: str) -> bool:
        # Fully-connected fabrics (the common case) skip the frozenset
        # allocation; this is the hottest check in the simulator.
        if not self._isolated and not self._partitions:
            return True
        if src in self._isolated or dst in self._isolated:
            return False
        return frozenset((src, dst)) not in self._partitions

    # -- topology -------------------------------------------------------------
    def set_link_latency(self, a: str, b: str, latency: float) -> None:
        """Override the one-way latency between two hosts *or sites*.

        Lookup precedence at send time: host-pair override, then
        site-pair override, then the LAN factor (same site), then the
        global WAN default.
        """
        self._link_latency[frozenset((a, b))] = latency

    def _base_latency(self, src: "Host", dst: Optional["Host"],
                      dst_name: str) -> float:
        if self._link_latency:
            override = self._link_latency.get(
                frozenset((src.name, dst_name)))
            if override is not None:
                return override
            if dst is not None and src.site and dst.site:
                override = self._link_latency.get(
                    frozenset((src.site, dst.site)))
                if override is not None:
                    return override
        if dst is not None and src.site and src.site == dst.site:
            return self.latency * self.lan_factor
        return self.latency

    # -- delivery -------------------------------------------------------------
    def delay(self) -> float:
        return self.latency + self._rng.uniform(0.0, self.jitter)

    def send(
        self,
        src: "Host",
        dst_name: str,
        service: str,
        payload: dict[str, Any],
    ) -> None:
        """Fire-and-forget datagram; drops are silent (caller must timeout)."""
        self.sent += 1
        # Deep-copy models serialization: no object sharing across hosts.
        dgram = Datagram(src.name, dst_name, service, fast_deepcopy(payload))
        if not src.up:
            self.dropped += 1
            return
        if not self.reachable(src.name, dst_name):
            self.dropped += 1
            return
        # Loss models the WAN: traffic inside one site (same non-empty
        # `site` tag) rides the LAN and is not subject to random loss.
        dst_host = self.sim.hosts.get(dst_name)
        same_site = (dst_host is not None and src.site
                     and src.site == dst_host.site)
        if not same_site and self.loss_rate > 0.0 and \
                self._rng.random() < self.loss_rate:
            self.dropped += 1
            self.sim.trace.log("network", "loss", src=src.name, dst=dst_name,
                               service=service)
            return
        latency = self._base_latency(src, dst_host, dst_name) \
            + self._rng.uniform(0.0, self.jitter)
        self.sim.schedule(latency, lambda: self._arrive(dgram))

    def _arrive(self, dgram: Datagram) -> None:
        # Partitions/crashes that happened in flight still stop delivery.
        if not self.reachable(dgram.src, dgram.dst):
            self.dropped += 1
            return
        dst = self.sim.hosts.get(dgram.dst)
        if dst is None or not dst.up:
            self.dropped += 1
            return
        service = dst.get_service(dgram.service)
        if service is None:
            self.dropped += 1
            return
        self.delivered += 1
        deliver: Callable[[Datagram], None] = getattr(service, "deliver")
        deliver(dgram)


class Mailbox:
    """A service that queues datagrams for a consuming process.

    Used for one-way streams (e.g. GASS stdout chunks): producers ``send``
    datagrams at the mailbox's service name; the consumer process blocks on
    :meth:`get`.
    """

    def __init__(self, host: "Host", name: str):
        self.sim = host.sim
        self.host = host
        self.name = name
        self._queue: list[Datagram] = []
        self._waiter = None
        host.register_service(name, self)

    def deliver(self, dgram: Datagram) -> None:
        self._queue.append(dgram)
        if self._waiter is not None and not self._waiter.triggered:
            waiter, self._waiter = self._waiter, None
            waiter.succeed(self._queue.pop(0))

    def get(self):
        """Event yielding the next datagram (FIFO)."""
        ev = self.sim.event(name=f"mailbox:{self.name}")
        if self._queue:
            ev.succeed(self._queue.pop(0))
        else:
            if self._waiter is not None and not self._waiter.triggered:
                raise SimulationError(
                    f"mailbox {self.name} already has a waiting consumer")
            self._waiter = ev
        return ev

    def close(self) -> None:
        self.host.unregister_service(self.name)
