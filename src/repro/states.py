"""The unified job-state vocabulary.

Three queue layers each grew their own state strings -- the Condor-G
grid queue (``core.job``), the Condor pool queue (``condor.jobs``), and
the site batch systems (``lrm.base``) -- plus ad-hoc literal tuples in
``core.api`` and ``chaos.invariants`` deciding what counts as finished.
:class:`JobState` is the single spelling of all of them.

It is a *str* enum: every member ``==`` its literal value, hashes like
it, formats like it, JSON-serializes as it, and round-trips through
stable storage and the network layer unchanged.  Code (and persisted
records from older runs) carrying plain strings keeps working; the enum
adds the shared ``is_terminal`` / ``is_complete`` vocabulary so the
"which strings mean done?" question has one answer.
"""

from __future__ import annotations

import enum


class JobState(str, enum.Enum):
    """Every job state across the grid-queue, pool, and LRM layers."""

    # Condor-G grid queue (paper §4.2 state machine, plus the
    # data-placement phases from repro.data)
    UNSUBMITTED = "UNSUBMITTED"
    STAGING = "STAGING"           # inputs moving to the chosen site's SE
    SUBMITTING = "SUBMITTING"
    PENDING = "PENDING"
    ACTIVE = "ACTIVE"
    STAGING_OUT = "STAGING_OUT"   # remote DONE; outputs being placed
    DONE = "DONE"
    FAILED = "FAILED"
    HELD = "HELD"

    # Condor pool queue (Schedd)
    IDLE = "IDLE"
    MATCHED = "MATCHED"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    REMOVED = "REMOVED"

    # Site batch systems (LRMs)
    QUEUED = "QUEUED"
    CANCELLED = "CANCELLED"
    PREEMPTED = "PREEMPTED"

    # Behave exactly like the underlying string everywhere it is
    # printed, formatted, or serialized (default Enum.__str__ would
    # yield "JobState.DONE" and change every trace and digest).
    __str__ = str.__str__
    __format__ = str.__format__

    @property
    def is_terminal(self) -> bool:
        """The state is absorbing: the job will never run again."""
        return self in TERMINAL_STATES

    @property
    def is_complete(self) -> bool:
        """The job finished successfully (layer-appropriate spelling)."""
        return self in COMPLETE_STATES


#: States no job ever leaves, across all layers.
TERMINAL_STATES = frozenset({
    JobState.DONE, JobState.COMPLETED, JobState.FAILED,
    JobState.REMOVED, JobState.CANCELLED,
})

#: Successful completion, across all layers.
COMPLETE_STATES = frozenset({JobState.DONE, JobState.COMPLETED})


def is_terminal(state: str) -> bool:
    """`state` (enum member or plain string) is absorbing."""
    return state in TERMINAL_STATES


def is_complete(state: str) -> bool:
    """`state` (enum member or plain string) is a successful finish."""
    return state in COMPLETE_STATES
