"""repro: a from-scratch reproduction of Condor-G (HPDC 2001).

Condor-G is a *computation management agent* that lets one user run large
computations across many administrative domains by combining inter-domain
Grid protocols (GSI, GRAM, GASS, MDS-2, GridFTP -- the Globus Toolkit)
with intra-domain computation management (the Condor system), including
the GlideIn mechanism that builds a personal Condor pool out of Grid
resources.

Everything runs on a deterministic discrete-event simulator
(:mod:`repro.sim`); see DESIGN.md for the substitution rationale and the
experiment index.

Quickstart::

    from repro import (AgentSpec, GridTestbed, JobDescription, SiteSpec,
                       TestbedConfig)

    testbed = GridTestbed(TestbedConfig(seed=42))
    site = testbed.add_site(SiteSpec("wisc", scheduler="pbs", cpus=16))
    agent = testbed.add_agent(AgentSpec("alice"))
    job = agent.submit(JobDescription(executable="sim.exe",
                                      runtime=120.0),
                       resource=site.contact)
    testbed.run_until_quiet()
    assert agent.status(job).is_complete
"""

from .core.api import CondorGAgent, JobDescription, JobStatus
from .grid.config import (AdmissionPolicy, AgentSpec, FactoryPolicy,
                          SiteSpec, TestbedConfig, TrafficProfile)
from .grid.testbed import GridTestbed, Site

__version__ = "1.0.0"

__all__ = ["AdmissionPolicy", "AgentSpec", "CondorGAgent", "FactoryPolicy",
           "GridTestbed", "JobDescription", "JobStatus", "Site", "SiteSpec",
           "TestbedConfig", "TrafficProfile", "__version__"]
