"""Profile any registered scenario under cProfile, in one command.

ROADMAP item 1 says "profile it, then attack"; this makes "profile it"::

    PYTHONPATH=src python -m repro.profile scale-gram --top 25
    PYTHONPATH=src python -m repro.profile monitored-gram --legacy

Builds the scenario, runs it to quiescence (every workload job
terminal) or its cap under ``cProfile``, then prints

* the top-N hotspots by cumulative time (``pstats``), and
* per-daemon RPC counts -- every ``call``/``notify`` tallied by
  ``(service, method)`` via :data:`repro.sim.rpc.RPC_STATS`, with
  per-instance service names collapsed (``jm:site00-jm7`` -> ``jm:*``)
  so ten thousand JobManagers read as one row.

The RPC tally is plain Python bookkeeping outside the simulation, so a
profiled run keeps the exact digest of an unprofiled one.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

from .grid.scenarios import get_scenario, scenario_names
from .sim import rpc
from .sim.perf import perf_mode
from .states import is_terminal


def _normalize_service(name: str) -> str:
    """Collapse per-instance service names onto their daemon family."""
    for sep in (":", "@"):
        if sep in name:
            return name.split(sep, 1)[0] + sep + "*"
    if name.startswith("gass-"):
        return "gass-*"
    return name


def _nonterminal(tb) -> int:
    total = 0
    for agent in tb.agents.values():
        schedd = getattr(agent, "schedd", None)
        if schedd is not None:
            total += sum(1 for j in schedd.jobs.values()
                         if not is_terminal(j.state))
        scheduler = getattr(agent, "scheduler", None)
        if scheduler is not None:
            total += sum(1 for j in scheduler.jobs.values()
                         if not j.is_terminal)
    return total


def _run_scenario(name: str, seed: int, until):
    scenario = get_scenario(name)
    tb = scenario.build(seed)
    cap = until if until is not None else scenario.cap
    chunk = scenario.chunk
    while tb.sim.now < cap and _nonterminal(tb):
        tb.run(until=min(cap, tb.sim.now + chunk))
    return tb


def _print_rpc_table(stats: dict, width: int = 72) -> None:
    by_daemon: dict[tuple[str, str], int] = {}
    for (service, method), count in stats.items():
        key = (_normalize_service(service), method)
        by_daemon[key] = by_daemon.get(key, 0) + count
    total = sum(by_daemon.values())
    print("\nper-daemon RPC counts "
          f"({total} calls/notifies total)")
    print("-" * width)
    print(f"{'service':<24} {'method':<28} {'calls':>10}")
    print("-" * width)
    ranked = sorted(by_daemon.items(), key=lambda kv: (-kv[1], kv[0]))
    for (service, method), count in ranked:
        print(f"{service:<24} {method:<28} {count:>10}")
    print("-" * width)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="Run a registered scenario under cProfile and print "
                    "hotspots + per-daemon RPC counts.")
    parser.add_argument("scenario",
                        help="registered scenario name "
                             f"(known: {', '.join(scenario_names())})")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--top", type=int, default=20,
                        help="hotspot rows to print (default 20)")
    parser.add_argument("--until", type=float, default=None,
                        help="simulated-seconds cap (default: the "
                             "scenario's own cap)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort order (default cumulative)")
    parser.add_argument("--legacy", action="store_true",
                        help="profile with perf_mode(False) -- the "
                             "unoptimized code paths")
    args = parser.parse_args(argv)

    get_scenario(args.scenario)    # fail fast on unknown names

    rpc.RPC_STATS = {}
    profiler = cProfile.Profile()
    try:
        if args.legacy:
            with perf_mode(False):
                profiler.enable()
                tb = _run_scenario(args.scenario, args.seed, args.until)
                profiler.disable()
        else:
            profiler.enable()
            tb = _run_scenario(args.scenario, args.seed, args.until)
            profiler.disable()
        stats = rpc.RPC_STATS
    finally:
        rpc.RPC_STATS = None

    mode = "legacy" if args.legacy else "optimized"
    print(f"scenario {args.scenario} seed {args.seed} ({mode}): "
          f"sim time {tb.sim.now:.1f}s, "
          f"{_nonterminal(tb)} workload jobs nonterminal")
    ps = pstats.Stats(profiler, stream=sys.stdout)
    ps.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    _print_rpc_table(stats)
    return 0


if __name__ == "__main__":
    sys.exit(main())
