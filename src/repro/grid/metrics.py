"""Metrics derived from the simulation trace.

The paper reports its experiences in CPU-hours delivered, average and
peak concurrently busy processors, and elapsed wall-clock -- all of which
fall out of the LRM start/finish trace records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..sim.trace import Trace


@dataclass
class ConcurrencyStats:
    cpu_seconds: float
    average_busy: float
    peak_busy: int
    first_start: float
    last_finish: float

    @property
    def cpu_hours(self) -> float:
        return self.cpu_seconds / 3600.0

    @property
    def span(self) -> float:
        return max(0.0, self.last_finish - self.first_start)


_EVENT_SETS = {
    # LRM allocations: slot occupancy at the batch-system level
    "lrm:": ("start", ("finish", "preempt")),
    # Startd sandboxes: actual application work on pool slots
    "startd:": ("job_start", ("job_done", "job_vacated", "job_failed")),
}


def _lrm_intervals(trace: Trace, component_prefix: str = "lrm:",
                   job_filter: Optional[str] = None
                   ) -> list[tuple[float, float]]:
    """(start, end) pairs of job executions from trace records.

    Walks only the components under ``component_prefix`` via the trace's
    per-component index rather than replaying the whole record log.
    """
    start_event, end_events = _EVENT_SETS.get(component_prefix,
                                              _EVENT_SETS["lrm:"])
    starts: dict[tuple[str, str], float] = {}
    intervals: list[tuple[float, float]] = []
    for rec in trace.iter_prefix(component_prefix):
        job = rec.details.get("job", "")
        if job_filter is not None and job_filter not in str(job):
            continue
        key = (rec.component, job)
        if rec.event == start_event:
            starts[key] = rec.time
        elif rec.event in end_events and key in starts:
            intervals.append((starts.pop(key), rec.time))
    # anything still running at the end of the trace
    end = trace.end_time()
    if end is not None:
        for t0 in starts.values():
            intervals.append((t0, end))
    return intervals


def concurrency(trace: Trace, component_prefix: str = "lrm:",
                job_filter: Optional[str] = None) -> ConcurrencyStats:
    """Busy-CPU statistics over the run (1 cpu per interval assumed)."""
    intervals = _lrm_intervals(trace, component_prefix, job_filter)
    if not intervals:
        return ConcurrencyStats(0.0, 0.0, 0, 0.0, 0.0)
    events: list[tuple[float, int]] = []
    for start, end in intervals:
        events.append((start, +1))
        events.append((end, -1))
    events.sort()
    busy = 0
    peak = 0
    area = 0.0
    last_t = events[0][0]
    for t, delta in events:
        area += busy * (t - last_t)
        busy += delta
        peak = max(peak, busy)
        last_t = t
    first = min(s for s, _ in intervals)
    last = max(e for _, e in intervals)
    # Same definition as ConcurrencyStats.span (clamped at zero): a
    # zero-length run has an average of 0, not cpu_seconds / epsilon.
    span = max(0.0, last - first)
    return ConcurrencyStats(
        cpu_seconds=area,
        average_busy=area / span if span > 0 else 0.0,
        peak_busy=peak,
        first_start=first,
        last_finish=last,
    )


def concurrency_from_snapshot(snapshot: dict,
                              gauge: str = "lrm.busy_slots"
                              ) -> ConcurrencyStats:
    """Busy-CPU statistics from a metrics-registry JSON snapshot.

    The busy-slot gauge integrates itself as the simulation runs, so
    this is O(1) in the length of the run -- no trace replay.  Pass
    ``sim.metrics.snapshot()`` (or a deserialized export of it).
    """
    entry = snapshot.get("metrics", {}).get(gauge)
    if entry is None or entry.get("first_active") is None:
        return ConcurrencyStats(0.0, 0.0, 0, 0.0, 0.0)
    first = entry["first_active"]
    last = entry["last_idle"] if entry["value"] == 0 and \
        entry["last_idle"] is not None else snapshot["time"]
    area = entry["integral"]
    span = max(0.0, last - first)
    return ConcurrencyStats(
        cpu_seconds=area,
        average_busy=area / span if span > 0 else 0.0,
        peak_busy=int(entry["max"]),
        first_start=first,
        last_finish=last,
    )


def registry_concurrency(sim, gauge: str = "lrm.busy_slots"
                         ) -> ConcurrencyStats:
    """Convenience wrapper: incremental concurrency for a live simulator."""
    return concurrency_from_snapshot(sim.metrics.snapshot(), gauge=gauge)


def timeline(trace: Trace, bucket: float,
             component_prefix: str = "lrm:",
             job_filter: Optional[str] = None
             ) -> tuple[np.ndarray, np.ndarray]:
    """(bucket_times, busy_cpus) sampled series for plotting/tables."""
    intervals = _lrm_intervals(trace, component_prefix, job_filter)
    if not intervals:
        return np.array([]), np.array([])
    t0 = min(s for s, _ in intervals)
    t1 = max(e for _, e in intervals)
    edges = np.arange(t0, t1 + bucket, bucket)
    busy = np.zeros(len(edges))
    for start, end in intervals:
        i0 = np.searchsorted(edges, start, side="right") - 1
        i1 = np.searchsorted(edges, end, side="right") - 1
        for i in range(max(i0, 0), min(i1 + 1, len(edges))):
            lo = max(start, edges[i])
            hi = min(end, edges[i] + bucket)
            if hi > lo:
                busy[i] += (hi - lo) / bucket
    return edges, busy


def queue_waits(trace: Trace, component_prefix: str = "lrm:"
                ) -> list[float]:
    """Per-job queue wait times (from LRM 'start' records)."""
    return [rec.details["waited"]
            for rec in trace.iter_prefix(component_prefix)
            if rec.event == "start" and "waited" in rec.details]


def percentile(values: Iterable[float], q: float) -> float:
    values = list(values)
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))
