"""Metrics derived from the simulation trace.

The paper reports its experiences in CPU-hours delivered, average and
peak concurrently busy processors, and elapsed wall-clock -- all of which
fall out of the LRM start/finish trace records.

Multi-tenant runs additionally need *per-user* accounting (who queued
what, who burned which CPU-seconds, who got throttled where, what each
user's allocations cost): :func:`user_rollup` joins every agent's queue,
the per-user metric labels, and the sites' usage ledgers into one table,
and :func:`grid_cost_report` aggregates the §1 cost reports across every
agent of a testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, TYPE_CHECKING

import numpy as np

from ..states import COMPLETE_STATES, JobState
from ..sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from .testbed import GridTestbed


@dataclass
class ConcurrencyStats:
    cpu_seconds: float
    average_busy: float
    peak_busy: int
    first_start: float
    last_finish: float

    @property
    def cpu_hours(self) -> float:
        return self.cpu_seconds / 3600.0

    @property
    def span(self) -> float:
        return max(0.0, self.last_finish - self.first_start)


_EVENT_SETS = {
    # LRM allocations: slot occupancy at the batch-system level
    "lrm:": ("start", ("finish", "preempt")),
    # Startd sandboxes: actual application work on pool slots
    "startd:": ("job_start", ("job_done", "job_vacated", "job_failed")),
}


def _lrm_intervals(trace: Trace, component_prefix: str = "lrm:",
                   job_filter: Optional[str] = None
                   ) -> list[tuple[float, float]]:
    """(start, end) pairs of job executions from trace records.

    Walks only the components under ``component_prefix`` via the trace's
    per-component index rather than replaying the whole record log.
    """
    start_event, end_events = _EVENT_SETS.get(component_prefix,
                                              _EVENT_SETS["lrm:"])
    starts: dict[tuple[str, str], float] = {}
    intervals: list[tuple[float, float]] = []
    for rec in trace.iter_prefix(component_prefix):
        job = rec.details.get("job", "")
        if job_filter is not None and job_filter not in str(job):
            continue
        key = (rec.component, job)
        if rec.event == start_event:
            starts[key] = rec.time
        elif rec.event in end_events and key in starts:
            intervals.append((starts.pop(key), rec.time))
    # anything still running at the end of the trace
    end = trace.end_time()
    if end is not None:
        for t0 in starts.values():
            intervals.append((t0, end))
    return intervals


def concurrency(trace: Trace, component_prefix: str = "lrm:",
                job_filter: Optional[str] = None) -> ConcurrencyStats:
    """Busy-CPU statistics over the run (1 cpu per interval assumed)."""
    intervals = _lrm_intervals(trace, component_prefix, job_filter)
    if not intervals:
        return ConcurrencyStats(0.0, 0.0, 0, 0.0, 0.0)
    events: list[tuple[float, int]] = []
    for start, end in intervals:
        events.append((start, +1))
        events.append((end, -1))
    events.sort()
    busy = 0
    peak = 0
    area = 0.0
    last_t = events[0][0]
    for t, delta in events:
        area += busy * (t - last_t)
        busy += delta
        peak = max(peak, busy)
        last_t = t
    first = min(s for s, _ in intervals)
    last = max(e for _, e in intervals)
    # Same definition as ConcurrencyStats.span (clamped at zero): a
    # zero-length run has an average of 0, not cpu_seconds / epsilon.
    span = max(0.0, last - first)
    return ConcurrencyStats(
        cpu_seconds=area,
        average_busy=area / span if span > 0 else 0.0,
        peak_busy=peak,
        first_start=first,
        last_finish=last,
    )


def concurrency_from_snapshot(snapshot: dict,
                              gauge: str = "lrm.busy_slots"
                              ) -> ConcurrencyStats:
    """Busy-CPU statistics from a metrics-registry JSON snapshot.

    The busy-slot gauge integrates itself as the simulation runs, so
    this is O(1) in the length of the run -- no trace replay.  Pass
    ``sim.metrics.snapshot()`` (or a deserialized export of it).
    """
    entry = snapshot.get("metrics", {}).get(gauge)
    if entry is None or entry.get("first_active") is None:
        return ConcurrencyStats(0.0, 0.0, 0, 0.0, 0.0)
    first = entry["first_active"]
    last = entry["last_idle"] if entry["value"] == 0 and \
        entry["last_idle"] is not None else snapshot["time"]
    area = entry["integral"]
    span = max(0.0, last - first)
    return ConcurrencyStats(
        cpu_seconds=area,
        average_busy=area / span if span > 0 else 0.0,
        peak_busy=int(entry["max"]),
        first_start=first,
        last_finish=last,
    )


def registry_concurrency(sim, gauge: str = "lrm.busy_slots"
                         ) -> ConcurrencyStats:
    """Convenience wrapper: incremental concurrency for a live simulator."""
    return concurrency_from_snapshot(sim.metrics.snapshot(), gauge=gauge)


def timeline(trace: Trace, bucket: float,
             component_prefix: str = "lrm:",
             job_filter: Optional[str] = None
             ) -> tuple[np.ndarray, np.ndarray]:
    """(bucket_times, busy_cpus) sampled series for plotting/tables."""
    intervals = _lrm_intervals(trace, component_prefix, job_filter)
    if not intervals:
        return np.array([]), np.array([])
    t0 = min(s for s, _ in intervals)
    t1 = max(e for _, e in intervals)
    edges = np.arange(t0, t1 + bucket, bucket)
    busy = np.zeros(len(edges))
    for start, end in intervals:
        i0 = np.searchsorted(edges, start, side="right") - 1
        i1 = np.searchsorted(edges, end, side="right") - 1
        for i in range(max(i0, 0), min(i1 + 1, len(edges))):
            lo = max(start, edges[i])
            hi = min(end, edges[i] + bucket)
            if hi > lo:
                busy[i] += (hi - lo) / bucket
    return edges, busy


def queue_waits(trace: Trace, component_prefix: str = "lrm:"
                ) -> list[float]:
    """Per-job queue wait times (from LRM 'start' records)."""
    return [rec.details["waited"]
            for rec in trace.iter_prefix(component_prefix)
            if rec.event == "start" and "waited" in rec.details]


def percentile(values: Iterable[float], q: float) -> float:
    values = list(values)
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


# -- per-user accounting (multi-tenant runs) -----------------------------------

def _labels_about(counter, user: str) -> float:
    """Sum a counter's labels that belong to `user`.

    Gatekeepers label by the submitting identity, which is either the
    user's submit host (``submit-<user>``) or a site-local gridmap
    account (``<site>_<user>``); both embed the user name, the same
    convention :meth:`GridTestbed.cost_report` applies to LRM accounts.
    """
    if counter is None:
        return 0.0
    return sum(v for label, v in counter.labels.items() if user in label)


def user_rollup(tb: "GridTestbed") -> dict[str, dict]:
    """One accounting row per user of a (finished or live) testbed.

    Joins three surfaces: each agent's persistent queue (job states and
    attempts), the per-user metric labels (queued/finished counters,
    gatekeeper admissions and rejections, client-side throttling), and
    the sites' per-account CPU ledgers (usage and §1 allocation cost).
    """
    metrics = tb.sim.metrics
    queued_c = metrics.get("scheduler.user_jobs_queued")
    finished_c = metrics.get("scheduler.user_jobs_finished")
    gk_submits = metrics.get("gatekeeper.submits_by_user")
    gk_rejects = metrics.get("gatekeeper.rejects_by_user")
    out: dict[str, dict] = {}
    for name, agent in sorted(tb.agents.items()):
        jobs = list(agent.scheduler.jobs.values())
        by_state: dict[str, int] = {}
        for job in jobs:
            by_state[str(job.state)] = by_state.get(str(job.state), 0) + 1
        # GlideIn-path payloads live in the agent's personal condor
        # queue, not the grid queue (there the jobs are the pilots).
        condor_jobs = condor_done = 0
        if agent.schedd is not None:
            for cjob in agent.schedd.jobs.values():
                condor_jobs += 1
                if cjob.state in COMPLETE_STATES:
                    condor_done += 1
        cpu_seconds = sum(
            usage for site in tb.sites.values()
            for account, usage in site.lrm.user_usage.items()
            if name in account)
        cost = tb.cost_report(name)
        out[name] = {
            "jobs": len(jobs),
            "done": by_state.get(str(JobState.DONE), 0),
            "failed": by_state.get(str(JobState.FAILED), 0),
            "held": by_state.get(str(JobState.HELD), 0),
            "attempts": sum(j.attempts for j in jobs),
            "condor_jobs": condor_jobs,
            "condor_done": condor_done,
            "queued_counter": (queued_c.labelled(name)
                               if queued_c is not None else 0.0),
            "finished_counter": (finished_c.labelled(name)
                                 if finished_c is not None else 0.0),
            "gatekeeper_submits": _labels_about(gk_submits, name),
            "gatekeeper_rejects": _labels_about(gk_rejects, name),
            "cpu_seconds": cpu_seconds,
            "cpu_hours": cpu_seconds / 3600.0,
            "cost": cost["total"],
        }
    return out


def data_rollup(tb: "GridTestbed") -> dict:
    """One table for the data plane of a run (repro.data).

    Joins the transfer scheduler's per-link counters, the replica
    catalog's verb counters, the GridManagers' staging counters, and the
    catalog's final replica map.  Empty-ish when the testbed has no data
    services.
    """
    metrics = tb.sim.metrics

    def labels_of(name: str) -> dict:
        c = metrics.get(name)
        return dict(sorted(c.labels.items())) if c is not None else {}

    def total_of(name: str) -> float:
        c = metrics.get(name)
        return c.value if c is not None else 0.0

    replicas: dict[str, int] = {}
    if tb.replica_catalog is not None:
        for name in tb.replica_catalog.names():
            entry = tb.replica_catalog.entry(name)
            replicas[name] = len(entry["replicas"])
    return {
        "bytes_moved": total_of("dts.bytes_moved"),
        "bytes_moved_by_link": labels_of("dts.bytes_moved"),
        "transfers": total_of("dts.transfers"),
        "transfer_retries": total_of("dts.retries"),
        "transfer_failures": total_of("dts.failures"),
        "checksum_mismatches": total_of("dts.checksum_mismatch"),
        "catalog_lookups": labels_of("catalog.lookups"),
        "catalog_registrations": total_of("catalog.registrations"),
        "catalog_invalidations": total_of("catalog.invalidations"),
        "stage_in_bytes": total_of("gridmanager.stage_in_bytes"),
        "stage_in_hits": total_of("gridmanager.stage_in_hits"),
        "stage_out_bytes": total_of("gridmanager.stage_out_bytes"),
        "stage_out_corrupt": total_of("gridmanager.stage_out_corrupt"),
        "broker_locality": labels_of("broker.data_locality"),
        "replica_counts": replicas,
    }


def grid_cost_report(tb: "GridTestbed") -> dict:
    """§1 cost reports for every agent, plus grid-wide totals.

    ``users`` maps each user to their per-site (and ``total``) charge;
    ``per_site`` sums each site's revenue over all users; ``total`` is
    the grand total (and equals the sum of either view).
    """
    users = {name: tb.cost_report(name) for name in sorted(tb.agents)}
    per_site: dict[str, float] = {name: 0.0 for name in sorted(tb.sites)}
    for report in users.values():
        for site_name, charge in report.items():
            if site_name != "total":
                per_site[site_name] = per_site.get(site_name, 0.0) + charge
    return {
        "users": users,
        "per_site": per_site,
        "total": sum(per_site.values()),
    }


def fairness(values: Iterable[float]) -> float:
    """Jain's fairness index over per-user shares (1.0 = perfectly fair).

    ``(sum x)^2 / (n * sum x^2)`` -- the standard scalar for "did N
    tenants get comparable service", reported by the multiuser
    benchmark next to its raw per-user table.
    """
    xs = np.asarray(list(values), dtype=float)
    if xs.size == 0:
        return 1.0
    denom = xs.size * float(np.square(xs).sum())
    if denom == 0.0:
        return 1.0
    return float(np.square(xs.sum()) / denom)
