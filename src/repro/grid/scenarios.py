"""Named, seed-parameterized grid scenarios.

One place to describe "a grid plus a workload" so that benchmarks, the
chaos campaign engine (:mod:`repro.chaos`), and ad-hoc experiments all
drive the *same* testbeds.  A scenario is everything needed to rebuild a
run from ``(name, seed)`` -- which is exactly what the multi-process
chaos runner ships across its worker boundary instead of pickling live
simulators.

Builders must be deterministic functions of the seed: all randomness
inside a scenario comes from the testbed's named RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.api import JobDescription
from ..workloads.synthetic import saturate
from .testbed import GridTestbed


@dataclass(frozen=True)
class Scenario:
    """A rebuildable experiment: topology + workload + chaos envelope.

    ``build(seed)`` returns a :class:`GridTestbed` with agents created
    and jobs submitted.  The remaining fields describe the window the
    chaos engine may inject faults into (``fault_horizon``), how long to
    keep simulating before declaring the run wedged (``cap``), which
    fault kinds make sense here (``fault_kinds``), and how many faults a
    generated plan may carry (``max_faults``).
    """

    name: str
    description: str
    build: Callable[[int], GridTestbed]
    fault_horizon: float = 2000.0
    cap: float = 40_000.0
    settle: float = 500.0
    fault_kinds: tuple[str, ...] = ("crash", "partition", "isolate",
                                    "jm_kill")
    max_faults: int = 4
    chunk: float = 1000.0


SCENARIOS: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"duplicate scenario {scenario.name!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") \
            from None


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


# -- shared topology builders --------------------------------------------------

def three_site_grid(seed: int = 0, loaded: bool = True,
                    **tb_kwargs) -> GridTestbed:
    """One idle and two loaded sites: the broker/glidein playground.

    (Also the topology behind the benchmark suite; see
    ``benchmarks/_scenarios.py``.)
    """
    tb = GridTestbed(seed=seed, **tb_kwargs)
    tb.add_site("alpha", scheduler="pbs", cpus=8)
    tb.add_site("beta", scheduler="lsf", cpus=8)
    tb.add_site("gamma", scheduler="loadleveler", cpus=8)
    if loaded:
        saturate(tb.sites["alpha"].lrm, jobs=24, runtime=2000.0)
        saturate(tb.sites["beta"].lrm, jobs=12, runtime=1500.0)
    return tb


# -- registered chaos scenarios -----------------------------------------------

def _build_quickstart(seed: int) -> GridTestbed:
    """The examples/quickstart.py grid: two GSI sites, MDS broker."""
    tb = GridTestbed(seed=seed, use_gsi=True)
    tb.add_site("wisc", scheduler="pbs", cpus=16)
    tb.add_site("anl", scheduler="lsf", cpus=8)
    agent = tb.add_agent("alice", broker_kind="mds")
    tb.run(until=120.0)          # let MDS registrations warm up
    for i in range(2):
        agent.submit(JobDescription(executable="sim.exe",
                                    runtime=300.0 + 60 * i,
                                    input_size=20_000),
                     resource=tb.sites["wisc"].contact)
    for _ in range(3):
        agent.submit(JobDescription(executable="sweep.exe", runtime=200.0))
    return tb


def _build_three_site(seed: int) -> GridTestbed:
    """Three heterogeneous sites, light background load, userlist broker."""
    tb = GridTestbed(seed=seed)
    tb.add_site("alpha", scheduler="pbs", cpus=8)
    tb.add_site("beta", scheduler="lsf", cpus=8)
    tb.add_site("gamma", scheduler="loadleveler", cpus=8)
    saturate(tb.sites["alpha"].lrm, jobs=8, runtime=600.0)
    agent = tb.add_agent("bob", broker_kind="userlist")
    for i in range(6):
        agent.submit(JobDescription(executable="sweep.exe",
                                    runtime=150.0 + 25 * i))
    return tb


def _build_credential(seed: int) -> GridTestbed:
    """One GSI site, one user, long-ish jobs: the §4.3 playground."""
    tb = GridTestbed(seed=seed, use_gsi=True)
    tb.add_site("wisc", scheduler="pbs", cpus=4)
    agent = tb.add_agent("carol")
    for i in range(4):
        agent.submit(JobDescription(runtime=300.0 + 40 * i),
                     resource="wisc-gk")
    return tb


register(Scenario(
    name="quickstart",
    description="two GSI sites + MDS broker (examples/quickstart.py)",
    build=_build_quickstart,
    fault_horizon=2500.0,
    fault_kinds=("crash", "partition", "isolate", "jm_kill",
                 "proxy_expire"),
))

register(Scenario(
    name="three-site",
    description="three heterogeneous sites, userlist broker, light load",
    build=_build_three_site,
    fault_horizon=2500.0,
))

register(Scenario(
    name="credential",
    description="single GSI site; §4.3 expiry/hold/notify/refresh drills",
    build=_build_credential,
    fault_horizon=1500.0,
    fault_kinds=("proxy_expire", "jm_kill", "partition"),
    max_faults=3,
))
