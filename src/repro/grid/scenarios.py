"""Named, seed-parameterized grid scenarios.

One place to describe "a grid plus a workload" so that benchmarks, the
chaos campaign engine (:mod:`repro.chaos`), and ad-hoc experiments all
drive the *same* testbeds.  A scenario is everything needed to rebuild a
run from ``(name, seed)`` -- which is exactly what the multi-process
chaos runner ships across its worker boundary instead of pickling live
simulators.

Builders must be deterministic functions of the seed: all randomness
inside a scenario comes from the testbed's named RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Callable, Optional

from ..core.api import JobDescription
from ..workloads.cms import DataCMSConfig, build_data_cms_jobs, \
    data_cms_dataset_sizes
from ..workloads.synthetic import TrafficProfile, saturate
from .config import AdmissionPolicy, AgentSpec, DatasetSpec, \
    FactoryPolicy, SiteSpec, TestbedConfig
from .testbed import GridTestbed


@dataclass(frozen=True)
class Scenario:
    """A rebuildable experiment: topology + workload + chaos envelope.

    ``build(seed)`` returns a :class:`GridTestbed` with agents created
    and jobs submitted.  The remaining fields describe the window the
    chaos engine may inject faults into (``fault_horizon``), how long to
    keep simulating before declaring the run wedged (``cap``), which
    fault kinds make sense here (``fault_kinds``), and how many faults a
    generated plan may carry (``max_faults``).
    """

    name: str
    description: str
    build: Callable[[int], GridTestbed]
    fault_horizon: float = 2000.0
    cap: float = 40_000.0
    settle: float = 500.0
    fault_kinds: tuple[str, ...] = ("crash", "partition", "isolate",
                                    "jm_kill")
    max_faults: int = 4
    chunk: float = 1000.0

    def with_overrides(self, name: str,
                       description: Optional[str] = None,
                       **params) -> "Scenario":
        """A named variant of this scenario.

        Keyword arguments that are :class:`Scenario` fields
        (``fault_horizon``, ``cap``, ...) override the envelope; every
        other keyword is bound into the builder, so
        ``sc.with_overrides("big", jobs=10_000)`` builds with
        ``sc.build(seed, jobs=10_000)``.  This is how scenario families
        (scale/multiuser/data/burst) derive variants without copy-pasting
        builder blocks.  The variant is *not* registered -- pass it to
        :func:`register` if it should be.
        """
        meta_fields = {f.name for f in dataclass_fields(Scenario)} \
            - {"name", "description", "build"}
        meta = {key: params.pop(key) for key in list(params)
                if key in meta_fields}
        build = self.build
        if params:
            base, bound = self.build, dict(params)

            def build(seed: int, _base=base, _bound=bound):
                return _base(seed, **_bound)

        return replace(
            self, name=name, build=build,
            description=description
            if description is not None else self.description,
            **meta)


SCENARIOS: dict[str, Scenario] = {}


def _add(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"duplicate scenario {scenario.name!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


def register(scenario: Optional[Scenario] = None, **fields):
    """Register a scenario -- as a value or as a builder decorator.

    Value form (variants, pre-built Scenario objects)::

        register(base.with_overrides("big", jobs=10_000))

    Decorator form (the common case -- the builder function stays a
    plain importable function, its Scenario rides on ``fn.scenario``)::

        @register(name="burst-flash", description="...", cap=60_000.0)
        def burst_flash_grid(seed=0, **knobs) -> GridTestbed: ...
    """
    if scenario is not None:
        if fields:
            raise TypeError(
                "pass either a Scenario or decorator fields, not both")
        return _add(scenario)

    def decorator(fn):
        fn.scenario = _add(Scenario(build=fn, **fields))
        return fn

    return decorator


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") \
            from None


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


# -- shared topology builders --------------------------------------------------

_THREE_SITES = (
    SiteSpec("alpha", scheduler="pbs", cpus=8),
    SiteSpec("beta", scheduler="lsf", cpus=8),
    SiteSpec("gamma", scheduler="loadleveler", cpus=8),
)


def three_site_grid(seed: int = 0, loaded: bool = True,
                    **tb_kwargs) -> GridTestbed:
    """One idle and two loaded sites: the broker/glidein playground.

    (Also the topology behind the benchmark suite; see
    ``benchmarks/_scenarios.py``.)
    """
    config = TestbedConfig(seed=seed, sites=_THREE_SITES, **tb_kwargs)
    tb = GridTestbed.from_config(config)
    if loaded:
        saturate(tb.sites["alpha"].lrm, jobs=24, runtime=2000.0)
        saturate(tb.sites["beta"].lrm, jobs=12, runtime=1500.0)
    return tb


# -- registered chaos scenarios -----------------------------------------------

QUICKSTART_CONFIG = TestbedConfig(
    use_gsi=True,
    sites=(SiteSpec("wisc", scheduler="pbs", cpus=16),
           SiteSpec("anl", scheduler="lsf", cpus=8)),
    agents=(AgentSpec("alice", broker_kind="mds"),),
)


@register(
    name="quickstart",
    description="two GSI sites + MDS broker (examples/quickstart.py)",
    fault_horizon=2500.0,
    fault_kinds=("crash", "partition", "isolate", "jm_kill",
                 "proxy_expire"),
)
def _build_quickstart(seed: int) -> GridTestbed:
    """The examples/quickstart.py grid: two GSI sites, MDS broker."""
    tb = GridTestbed.from_config(QUICKSTART_CONFIG, seed)
    agent = tb.agents["alice"]
    tb.run(until=120.0)          # let MDS registrations warm up
    for i in range(2):
        agent.submit(JobDescription(executable="sim.exe",
                                    runtime=300.0 + 60 * i,
                                    input_size=20_000),
                     resource=tb.sites["wisc"].contact)
    for _ in range(3):
        agent.submit(JobDescription(executable="sweep.exe", runtime=200.0))
    return tb


@register(
    name="three-site",
    description="three heterogeneous sites, userlist broker, light load",
    fault_horizon=2500.0,
)
def _build_three_site(seed: int) -> GridTestbed:
    """Three heterogeneous sites, light background load, userlist broker."""
    # The background load lands *between* sites and agent (order is part
    # of the digest), so only the sites come from the config.
    tb = GridTestbed.from_config(TestbedConfig(sites=_THREE_SITES), seed)
    saturate(tb.sites["alpha"].lrm, jobs=8, runtime=600.0)
    agent = tb.add_agent(AgentSpec("bob", broker_kind="userlist"))
    for i in range(6):
        agent.submit(JobDescription(executable="sweep.exe",
                                    runtime=150.0 + 25 * i))
    return tb


CREDENTIAL_CONFIG = TestbedConfig(
    use_gsi=True,
    sites=(SiteSpec("wisc", scheduler="pbs", cpus=4),),
    agents=(AgentSpec("carol"),),
)


@register(
    name="credential",
    description="single GSI site; §4.3 expiry/hold/notify/refresh drills",
    fault_horizon=1500.0,
    fault_kinds=("proxy_expire", "jm_kill", "partition"),
    max_faults=3,
)
def _build_credential(seed: int) -> GridTestbed:
    """One GSI site, one user, long-ish jobs: the §4.3 playground."""
    tb = GridTestbed.from_config(CREDENTIAL_CONFIG, seed)
    agent = tb.agents["carol"]
    for i in range(4):
        agent.submit(JobDescription(runtime=300.0 + 40 * i),
                     resource="wisc-gk")
    return tb


# -- scale-out scenarios (benchmarks/bench_scale.py) ---------------------------

_SCALE_SCHEDULERS = ("pbs", "lsf", "loadleveler")


def scale_sites(n_sites: int = 20, cpus: int = 50) -> tuple[SiteSpec, ...]:
    """A uniform fleet of `n_sites` clusters for scale-out runs."""
    return tuple(
        SiteSpec(f"site{i:02d}",
                 scheduler=_SCALE_SCHEDULERS[i % len(_SCALE_SCHEDULERS)],
                 cpus=cpus, register_mds=False)
        for i in range(n_sites))


@register(
    name="scale-gram",
    description="10k GRAM jobs over 20 sites x 50 cpus, userlist broker",
    fault_horizon=5000.0,
    cap=200_000.0,
    chunk=5000.0,
    max_faults=2,
)
def scale_gram_grid(seed: int = 0, jobs: int = 10_000, n_sites: int = 20,
                    cpus: int = 50, grid_monitor: bool = False,
                    runtime_base: float = 60.0,
                    runtime_step: float = 5.0) -> GridTestbed:
    """The GRAM-path scale cell: one agent spraying `jobs` grid-universe
    jobs round-robin over `n_sites` x `cpus` slots.

    Keeps MDS/repo off and stdout streaming disabled so the event load
    is the job-management machinery itself, not ancillary chatter.
    ``grid_monitor=True`` swaps the per-job poll storm for per-site
    Grid Monitor reports (the §5.1 fix) -- the same workload, a
    different RPC pattern.
    """
    config = TestbedConfig(
        seed=seed, with_mds=False, with_repo=False,
        trace_max_records=200_000,
        sites=scale_sites(n_sites, cpus),
        agents=(AgentSpec("scale", broker_kind="userlist",
                          personal_pool=False,
                          grid_monitor=grid_monitor),),
    )
    tb = GridTestbed.from_config(config)
    agent = tb.agents["scale"]
    for i in range(jobs):
        agent.submit(JobDescription(
            executable="scale.exe",
            runtime=runtime_base + runtime_step * (i % 40),
            stream_stdout=False))
    return tb


@register(
    name="scale-glidein",
    description="10k vanilla jobs on 1000 glideins across 20 sites",
    fault_horizon=5000.0,
    cap=200_000.0,
    chunk=5000.0,
    max_faults=2,
)
def scale_glidein_grid(seed: int = 0, jobs: int = 10_000, n_sites: int = 20,
                       glideins_per_site: int = 50) -> GridTestbed:
    """The GlideIn-path scale cell: a personal pool spanning `n_sites`
    sites, `jobs` vanilla jobs matched onto the glideins.

    Walltime/idle_timeout are sized so no glidein retires mid-run -- the
    cell measures steady-state matchmaking + execution, not churn.
    """
    config = TestbedConfig(
        seed=seed, with_mds=False, with_repo=True,
        trace_max_records=200_000,
        sites=scale_sites(n_sites, cpus=glideins_per_site),
        agents=(AgentSpec("scale"),),
    )
    tb = GridTestbed.from_config(config)
    agent = tb.agents["scale"]
    for site in tb.sites.values():
        agent.glide_in(site.contact, count=glideins_per_site,
                       walltime=100_000.0, idle_timeout=100_000.0)
    for i in range(jobs):
        agent.submit(JobDescription(executable="mw.exe", universe="vanilla",
                                    runtime=60.0 + 5.0 * (i % 40)))
    return tb


@register(
    name="scale-100k",
    description="100k vanilla jobs on a 2500-glidein claim-reuse pool",
    fault_horizon=5000.0,
    cap=200_000.0,
    chunk=5000.0,
    max_faults=2,
)
def scale_pool_grid(seed: int = 0, jobs: int = 100_000, n_sites: int = 25,
                    glideins_per_site: int = 100, warmup: float = 400.0,
                    advertise_interval: float = 120.0) -> GridTestbed:
    """The 100k-job pool cell: claim reuse carries the steady state.

    A single personal pool glides into `n_sites` x `glideins_per_site`
    slots; the job flood arrives *after* a warmup so the first
    negotiation cycles bind the whole fleet, and from then on every
    completion re-matches a queued job through the schedd's claim-reuse
    fast path -- no per-job negotiation round-trips.  Jobs are short
    (sub-checkpoint-interval) so the measured cost is matchmaking and
    claim turnover, not execution chatter.
    """
    config = TestbedConfig(
        seed=seed, with_mds=False, with_repo=True,
        trace_max_records=200_000,
        sites=scale_sites(n_sites, cpus=glideins_per_site),
        agents=(AgentSpec("scale", claim_reuse=True,
                          negotiation_interval=30.0),),
    )
    tb = GridTestbed.from_config(config)
    agent = tb.agents["scale"]
    for site in tb.sites.values():
        agent.glide_in(site.contact, count=glideins_per_site,
                       walltime=1_000_000.0, idle_timeout=1_000_000.0,
                       advertise_interval=advertise_interval)
    tb.run(until=warmup)
    for i in range(jobs):
        agent.submit(JobDescription(executable="mw.exe", universe="vanilla",
                                    runtime=30.0 + 1.0 * (i % 40)))
    return tb


def kiloclient_grid(seed: int = 0, users: int = 1000,
                    jobs_per_user: int = 10, n_sites: int = 20,
                    cpus: int = 50) -> GridTestbed:
    """The 1000-agent cell: every user runs their own Condor-G agent
    (scheduler + GridManager + submit machine), spraying a small GRAM
    workload over shared fair-share sites.  Stresses the many-client
    side of the system the way scale-100k stresses the many-job side.
    """
    return multiuser_gram_grid(
        seed=seed, users=users, jobs_per_user=jobs_per_user,
        n_sites=n_sites, cpus=cpus,
        max_user_jobmanagers=8, max_submitted_per_resource=2)


@register(
    name="pool-reuse",
    description="small claim-reuse pool: 40 vanilla jobs on 8 glideins",
    fault_horizon=1500.0,
    fault_kinds=("crash", "partition", "isolate"),
    max_faults=3,
)
def pool_reuse_grid(seed: int = 0, jobs: int = 40) -> GridTestbed:
    """A small claim-reuse pool: the chaos/equivalence workout for the
    collector indexes, negotiator memoization, and reuse protocol."""
    config = TestbedConfig(
        seed=seed, with_mds=False, with_repo=True,
        sites=(SiteSpec("wisc", scheduler="pbs", cpus=4,
                        register_mds=False),
               SiteSpec("anl", scheduler="lsf", cpus=4,
                        register_mds=False)),
        agents=(AgentSpec("dave", claim_reuse=True,
                          negotiation_interval=15.0),),
    )
    tb = GridTestbed.from_config(config)
    agent = tb.agents["dave"]
    for site in tb.sites.values():
        agent.glide_in(site.contact, count=4, walltime=20_000.0,
                       idle_timeout=3_000.0)
    tb.run(until=150.0)
    for i in range(jobs):
        agent.submit(JobDescription(executable="mw.exe", universe="vanilla",
                                    runtime=40.0 + 10.0 * (i % 5)))
    return tb


# -- data-aware scenarios (benchmarks/bench_data.py) ---------------------------

_DATA_SITE_NAMES = ("caltech", "wisc", "ncsa")

#: transfer-cost dominated: big event files, short reconstruction
STAGING_BOUND_CMS = DataCMSConfig(
    n_jobs=24, n_run_datasets=6,
    run_size=60_000_000, calibration_size=20_000_000,
    reco_seconds=120.0)

#: compute dominated: small inputs, long reconstruction
COMPUTE_BOUND_CMS = DataCMSConfig(
    n_jobs=24, n_run_datasets=6,
    run_size=2_000_000, calibration_size=1_000_000,
    reco_seconds=1200.0)


def data_cms_config(cms: DataCMSConfig,
                    broker_kind: str = "data-aware",
                    seed: int = 0) -> TestbedConfig:
    """Three storage-equipped sites + the dataset-driven CMS workload.

    Calibration constants start out only at the first site; the run
    files are spread round-robin, so any placement that ignores replica
    locality must haul most of its inputs across the WAN.
    """
    sites = tuple(
        SiteSpec(name, scheduler=_SCALE_SCHEDULERS[i],
                 cpus=4, register_mds=False, storage=25_000_000.0)
        for i, name in enumerate(_DATA_SITE_NAMES))
    datasets = []
    for j, (name, size) in enumerate(data_cms_dataset_sizes(cms)):
        if name == cms.calibration_name:
            home = _DATA_SITE_NAMES[0]
        else:
            home = _DATA_SITE_NAMES[j % len(_DATA_SITE_NAMES)]
        datasets.append(DatasetSpec(name, size=size, replicas=(home,)))
    return TestbedConfig(
        seed=seed, with_mds=False, with_repo=False,
        sites=sites, datasets=tuple(datasets),
        data_link_bandwidth=2_000_000.0, data_max_streams=2,
        agents=(AgentSpec("phys", broker_kind=broker_kind,
                          personal_pool=False),),
    )


@register(
    name="data-cms",
    description="dataset-driven CMS reco: 24 staging-bound jobs, "
                "3 storage sites, data-aware broker",
    fault_horizon=2500.0,
    fault_kinds=("crash", "partition", "isolate", "corrupt"),
    max_faults=3,
)
def data_cms_grid(seed: int = 0, cms: DataCMSConfig = STAGING_BOUND_CMS,
                  broker_kind: str = "data-aware") -> GridTestbed:
    """The dataset-driven CMS reconstruction pass, broker-placed."""
    tb = GridTestbed.from_config(data_cms_config(cms, broker_kind), seed)
    agent = tb.agents["phys"]
    for description in build_data_cms_jobs(cms):
        agent.submit(description)
    return tb


def data_cms_compute_grid(seed: int = 0) -> GridTestbed:
    """Compute-bound sibling of ``data-cms`` (same topology/catalog)."""
    return data_cms_grid(seed, cms=COMPUTE_BOUND_CMS)


# -- multi-tenant scenarios (benchmarks/bench_multiuser.py) --------------------

def multiuser_sites(n_sites: int = 20, cpus: int = 25,
                    max_user_jobmanagers: int = 6) -> tuple[SiteSpec, ...]:
    """A fleet of shared sites with per-user gatekeeper fair-share caps."""
    return tuple(
        SiteSpec(f"site{i:02d}",
                 scheduler=_SCALE_SCHEDULERS[i % len(_SCALE_SCHEDULERS)],
                 cpus=cpus, register_mds=False,
                 max_user_jobmanagers=max_user_jobmanagers)
        for i in range(n_sites))


@register(
    name="multiuser-gram",
    description="50 agents x 100 GRAM jobs over 20 fair-share sites",
    fault_horizon=3000.0,
    cap=200_000.0,
    chunk=5000.0,
    max_faults=2,
)
def multiuser_gram_grid(seed: int = 0, users: int = 50,
                        jobs_per_user: int = 100, n_sites: int = 20,
                        cpus: int = 25, max_user_jobmanagers: int = 6,
                        max_submitted_per_resource: int = 4) -> GridTestbed:
    """The multi-tenant GRAM cell: `users` concurrent Condor-G agents
    (one scheduler + GridManager + submit machine each, as §3 requires)
    spraying `jobs_per_user` grid jobs over the same `n_sites` sites.

    Both fair-share layers are on: each gatekeeper caps live JobManagers
    per user, and each GridManager throttles its own in-flight jobs per
    resource.  Submissions interleave round-robin across users so every
    site sees genuine multi-tenant contention from t=0.
    """
    config = TestbedConfig(
        seed=seed, with_mds=False, with_repo=False,
        trace_max_records=200_000,
        sites=multiuser_sites(n_sites, cpus, max_user_jobmanagers),
        agents=tuple(
            AgentSpec(f"u{i:02d}", broker_kind="userlist",
                      personal_pool=False,
                      max_submitted_per_resource=max_submitted_per_resource)
            for i in range(users)),
    )
    tb = GridTestbed.from_config(config)
    agents = list(tb.agents.values())
    for k in range(jobs_per_user):
        for u, agent in enumerate(agents):
            agent.submit(JobDescription(
                executable="mt.exe",
                runtime=60.0 + 5.0 * ((u + k) % 40),
                stream_stdout=False))
    return tb


@register(
    name="multiuser-glidein",
    description="10 personal pools x 60 vanilla jobs over 5 shared sites",
    fault_horizon=3000.0,
    cap=200_000.0,
    chunk=5000.0,
    max_faults=2,
)
def multiuser_glidein_grid(seed: int = 0, users: int = 10,
                           jobs_per_user: int = 60, n_sites: int = 5,
                           glideins_per_site: int = 4) -> GridTestbed:
    """The multi-tenant GlideIn cell: every user builds their own
    personal pool over the same sites (Figure 2, in the plural) and runs
    vanilla jobs on their own glideins.
    """
    config = TestbedConfig(
        seed=seed, with_mds=False, with_repo=True,
        trace_max_records=200_000,
        sites=multiuser_sites(n_sites, cpus=users * glideins_per_site,
                              max_user_jobmanagers=glideins_per_site),
        agents=tuple(AgentSpec(f"u{i:02d}") for i in range(users)),
    )
    tb = GridTestbed.from_config(config)
    agents = list(tb.agents.values())
    for agent in agents:
        for site in tb.sites.values():
            agent.glide_in(site.contact, count=glideins_per_site,
                           walltime=100_000.0, idle_timeout=100_000.0)
    for k in range(jobs_per_user):
        for u, agent in enumerate(agents):
            agent.submit(JobDescription(
                executable="mw.exe", universe="vanilla",
                runtime=60.0 + 5.0 * ((u + k) % 40)))
    return tb


# -- bursty-traffic scenarios (benchmarks/bench_burst.py) ----------------------

#: the autoscaler the burst scenarios run: small floors, generous
#: ceilings, fast reaction -- the point is elasticity, not steady state.
BURST_POLICY = FactoryPolicy(
    min_glideins=0, max_glideins=12, jobs_per_glidein=2.0,
    max_step=6, scale_up_cooldown=40.0, scale_down_cooldown=120.0,
    idle_reserve=0, idle_grace=60.0, lease=100_000.0,
    idle_timeout=240.0, interval=20.0, wait_target=120.0)


@register(
    name="burst-flash",
    description="flash crowd into a factory-scaled glidein pool: "
                "1000 virtual users, 10x spike at t=600",
    fault_horizon=1500.0,
    cap=60_000.0,
    fault_kinds=("crash", "partition", "isolate", "jm_kill",
                 "factory_kill"),
    max_faults=3,
    chunk=2000.0,
)
def burst_flash_grid(seed: int = 0, *,
                     users: int = 1000,
                     n_sites: int = 3,
                     cpus: int = 16,
                     base_rate: float = 0.08,
                     flash_at: tuple = (600.0,),
                     flash_multiplier: float = 10.0,
                     flash_duration: float = 200.0,
                     diurnal_amplitude: float = 0.0,
                     diurnal_period: float = 2000.0,
                     horizon: float = 1500.0,
                     runtime_min: float = 20.0,
                     runtime_cap: float = 300.0,
                     policy: FactoryPolicy = BURST_POLICY) -> GridTestbed:
    """Bursty vanilla traffic into one factory-managed personal pool.

    The factory sees demand explode when the flash crowd hits, scales
    each site up within its policy envelope, and reaps the surplus once
    the spike drains -- the elasticity loop of docs/AUTOSCALING.md under
    the paper's own glidein machinery.
    """
    config = TestbedConfig(
        seed=seed, with_mds=False, with_repo=True,
        sites=tuple(
            SiteSpec(f"site{i:02d}",
                     scheduler=_SCALE_SCHEDULERS[i % len(_SCALE_SCHEDULERS)],
                     cpus=cpus, register_mds=False, factory=policy)
            for i in range(n_sites)),
        agents=(AgentSpec("burst", negotiation_interval=15.0),),
        traffic=TrafficProfile(
            users=users, horizon=horizon, base_rate=base_rate,
            diurnal_amplitude=diurnal_amplitude,
            diurnal_period=diurnal_period,
            flash_at=flash_at, flash_multiplier=flash_multiplier,
            flash_duration=flash_duration,
            runtime_min=runtime_min, runtime_cap=runtime_cap,
            universe="vanilla"),
    )
    return GridTestbed.from_config(config)


register(burst_flash_grid.scenario.with_overrides(
    "burst-diurnal",
    description="diurnal swell into a factory-scaled glidein pool: "
                "the autoscaler tracks a day/night cycle",
    fault_horizon=2500.0,
    flash_at=(), diurnal_amplitude=0.8, diurnal_period=2000.0,
    horizon=3000.0, base_rate=0.12))


@register(
    name="burst-overload",
    description="the §6 overload incident, survived: a 20x submission "
                "storm against admission-controlled gatekeepers",
    fault_horizon=1200.0,
    cap=60_000.0,
    fault_kinds=("crash", "partition", "jm_kill"),
    max_faults=3,
    chunk=2000.0,
)
def burst_overload_grid(seed: int = 0, *,
                        users: int = 400,
                        agents: int = 4,
                        n_sites: int = 2,
                        cpus: int = 10,
                        base_rate: float = 0.1,
                        flash_at: tuple = (100.0,),
                        flash_multiplier: float = 20.0,
                        flash_duration: float = 300.0,
                        horizon: float = 1200.0,
                        runtime_min: float = 10.0,
                        runtime_cap: float = 120.0,
                        admission_rate: float = 0.3,
                        admission_burst: int = 5,
                        admission_max_queue: int = 40) -> GridTestbed:
    """The §6 gatekeeper-overload incident as a surviving scenario.

    A submission storm (20x flash over many virtual users) slams
    GRAM-universe traffic into two small sites.  Without admission
    control the era's gatekeepers fell over; here the token bucket and
    queue-depth backpressure shed load with the congestion-backoff
    "JobManager limit" signal, so every submission eventually lands
    exactly once -- zero lost jobs is the acceptance criterion.
    """
    admission = AdmissionPolicy(rate=admission_rate,
                                burst=admission_burst,
                                max_queue=admission_max_queue,
                                poll_interval=10.0)
    config = TestbedConfig(
        seed=seed, with_mds=False, with_repo=False,
        sites=tuple(
            SiteSpec(f"site{i:02d}",
                     scheduler=_SCALE_SCHEDULERS[i % len(_SCALE_SCHEDULERS)],
                     cpus=cpus, register_mds=False, admission=admission)
            for i in range(n_sites)),
        agents=tuple(
            AgentSpec(f"storm{i}", broker_kind="userlist",
                      personal_pool=False)
            for i in range(agents)),
        traffic=TrafficProfile(
            users=users, horizon=horizon, base_rate=base_rate,
            flash_at=flash_at, flash_multiplier=flash_multiplier,
            flash_duration=flash_duration,
            runtime_min=runtime_min, runtime_cap=runtime_cap,
            universe="grid"),
    )
    return GridTestbed.from_config(config)


# -- derived variants (Scenario.with_overrides) --------------------------------
# The scale/multiuser/data/burst cells are registered for the benchmark
# suite and explicit `--scenarios <name>` chaos runs; they are NOT in
# the chaos engine's DEFAULT_SCENARIOS, so routine campaigns stay light.

register(scale_gram_grid.scenario.with_overrides(
    "monitored-gram",
    description="small GRAM grid with per-site Grid Monitor fan-in",
    fault_horizon=1500.0,
    cap=20_000.0,
    chunk=1000.0,
    fault_kinds=("crash", "partition", "isolate", "jm_kill",
                 "monitor_kill"),
    jobs=80, n_sites=4, cpus=10, grid_monitor=True))

register(scale_gram_grid.scenario.with_overrides(
    "scale-gram-monitor",
    description="scale-gram with per-site Grid Monitor status fan-in",
    fault_kinds=("crash", "partition", "isolate", "jm_kill",
                 "monitor_kill"),
    grid_monitor=True))

register(scale_gram_grid.scenario.with_overrides(
    "scale-100k-monitor",
    description="100k GRAM jobs over 25 sites x 200 cpus, Grid Monitor "
                "fan-in carrying all status traffic",
    fault_kinds=("crash", "partition", "isolate", "jm_kill",
                 "monitor_kill"),
    jobs=100_000, n_sites=25, cpus=200, grid_monitor=True,
    runtime_base=30.0, runtime_step=2.0))

register(multiuser_gram_grid.scenario.with_overrides(
    "kiloclient",
    description="1000 Condor-G agents x 10 GRAM jobs over 20 sites",
    fault_horizon=5000.0,
    users=1000, jobs_per_user=10, n_sites=20, cpus=50,
    max_user_jobmanagers=8, max_submitted_per_resource=2))

register(data_cms_grid.scenario.with_overrides(
    "data-cms-compute",
    description="compute-bound sibling of data-cms (same catalog)",
    cms=COMPUTE_BOUND_CMS))


# -- snapshot/restore scenarios (repro.sim.snapshot) ---------------------------

#: one week of simulated time -- the long-horizon regression envelope.
WEEK = 7 * 86_400.0


@register(
    name="week-credential-cycle",
    description="a week of long-haul GSI jobs on 8h proxies: ~20 "
                "expiry/hold/MyProxy-refresh/release cycles "
                "(run as snapshot/restore segments by the regression "
                "suite)",
    fault_horizon=86_400.0,
    cap=WEEK,
    settle=2000.0,
    fault_kinds=("proxy_expire", "jm_kill", "partition"),
    max_faults=2,
    chunk=21_600.0,
)
def _build_week_credential(seed: int) -> GridTestbed:
    """Six ~day-long jobs serialized through one cpu for a sim-week.

    The agent's proxies live 8 hours, so the CredentialMonitor must ride
    ~20 expiry -> hold -> MyProxy-refresh -> reforward -> release cycles
    to get every job home; the week-long horizon is what the segmented
    snapshot/restore regression suite replays in day-sized pieces.
    ``max_submitted_per_resource=1`` keeps at most one JobManager alive,
    which bounds the 5s LRM poll storm over 600k simulated seconds.
    """
    config = TestbedConfig(
        seed=seed, use_gsi=True,
        with_mds=False, with_repo=False, with_myproxy=True,
        sites=(SiteSpec("fnal", scheduler="pbs", cpus=1,
                        register_mds=False),),
        agents=(AgentSpec("week", broker_kind="userlist",
                          personal_pool=False,
                          proxy_lifetime=8 * 3600.0, myproxy=True,
                          max_submitted_per_resource=1),),
    )
    tb = GridTestbed.from_config(config)
    agent = tb.agents["week"]
    for i in range(6):
        agent.submit(JobDescription(executable="longhaul.exe",
                                    runtime=80_000.0 + 2_500.0 * i,
                                    stream_stdout=False))
    return tb


@register(
    name="shrink-lab",
    description="one busy pbs site, late-fault window: the "
                "shrink-from-snapshot testbed (long pre-fault prefix, "
                "short suffix)",
    fault_horizon=4200.0,
    cap=7000.0,
    settle=400.0,
    chunk=500.0,
)
def _build_shrink_lab(seed: int) -> GridTestbed:
    """A deliberately prefix-heavy cell for snapshot-mode shrinking.

    24 jobs keep 4 cpus busy to ~4650s; faults land after ~4000s, so a
    ddmin replay from zero re-simulates a long fault-free prefix that
    the fork-from-snapshot path skips entirely (>= 2x fewer replayed
    sim-seconds -- asserted by the shrink benchmark).
    """
    config = TestbedConfig(
        seed=seed, with_mds=False, with_repo=False,
        sites=(SiteSpec("lab", scheduler="pbs", cpus=4,
                        register_mds=False),),
        agents=(AgentSpec("dana", broker_kind="userlist",
                          personal_pool=False),),
    )
    tb = GridTestbed.from_config(config)
    agent = tb.agents["dana"]
    for i in range(24):
        agent.submit(JobDescription(executable="churn.exe",
                                    runtime=600.0 + 50.0 * (i % 8),
                                    stream_stdout=False))
    return tb
