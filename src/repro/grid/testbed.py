"""Testbed builder: whole multi-site grids in a few lines.

Assembles everything a Condor-G experiment needs: a CA and per-site
gridmaps (GSI), gatekeepers + local schedulers (one pair of hosts per
site, so interface-machine crashes never kill the cluster), MDS
registration, a central GridFTP repository holding the Condor binaries
for GlideIn bootstrap, and per-user agents on their own submit machines.

This is the module the examples and benchmarks drive; see
``examples/quickstart.py`` for the canonical usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..condor.jobs import reset_cluster_ids
from ..core.api import CondorGAgent
from ..core.broker import Broker, MDSBroker, QueueAwareBroker, UserListBroker
from ..core.job import reset_grid_job_ids
from ..gram.gatekeeper import Gatekeeper
from ..gridftp.server import GridFTPServer
from ..gsi.auth import GridMap, GSIAuthorizer
from ..gsi.crypto import reset_oracle
from ..gsi.myproxy import MyProxyServer
from ..gsi.pki import CertificateAuthority
from ..gsi.proxy import GridUser
from ..lrm.base import LocalResourceManager
from ..lrm.flavors import make_lrm
from ..mds.giis import GIIS, ResourceRegistrar
from ..mds.schema import resource_ad
from ..sim.failures import FailureInjector
from ..sim.hosts import Host
from ..sim.kernel import Simulator
from ..sim.network import Network

GIIS_HOST = "mds"
REPO_HOST = "condor-repo"
MYPROXY_HOST = "myproxy"
CONDOR_BINARIES = "condor/binaries.tar"


@dataclass
class Site:
    """One administrative domain: a gatekeeper and a cluster behind it."""

    name: str
    gk_host: Host
    lrm_host: Host
    lrm: LocalResourceManager
    gatekeeper: Gatekeeper
    gridmap: GridMap
    cpus: int
    arch: str = "INTEL"
    memory: int = 512
    allocation_cost: float = 0.0
    registrar: Optional[ResourceRegistrar] = None

    @property
    def contact(self) -> str:
        return self.gk_host.name

    def queue_depth(self) -> int:
        return self.lrm.queue_info()["queued_jobs"]


class GridTestbed:
    """A multi-institutional grid in a box."""

    def __init__(
        self,
        seed: int = 0,
        latency: float = 0.05,
        jitter: float = 0.01,
        loss_rate: float = 0.0,
        use_gsi: bool = False,
        with_mds: bool = True,
        with_repo: bool = True,
        with_myproxy: bool = False,
        trace_max_records: Optional[int] = None,
    ):
        # Restart the module-level id counters so a testbed's ids are a
        # pure function of its seed.  Without this, the second build of
        # the same (scenario, seed) in one process numbers its jobs and
        # keys from wherever the first build left off, and the
        # determinism audit (repro.chaos.digest) flags a divergence on
        # the very first trace record.
        reset_grid_job_ids()
        reset_cluster_ids()
        reset_oracle()
        self.sim = Simulator(seed=seed,
                             trace_max_records=trace_max_records)
        self.net = Network(self.sim, latency=latency, jitter=jitter,
                           loss_rate=loss_rate)
        self.failures = FailureInjector(self.sim)
        self.use_gsi = use_gsi
        self.ca = CertificateAuthority("TestGrid")
        self.sites: dict[str, Site] = {}
        self.users: dict[str, GridUser] = {}
        self.agents: dict[str, CondorGAgent] = {}
        self.giis: Optional[GIIS] = None
        self.repo: Optional[GridFTPServer] = None
        self.myproxy: Optional[MyProxyServer] = None
        if with_mds:
            self.giis = GIIS(Host(self.sim, GIIS_HOST))
        if with_repo:
            repo_host = Host(self.sim, REPO_HOST)
            self.repo = GridFTPServer(repo_host)
            self.repo.publish(CONDOR_BINARIES, size=5_000_000)
        if with_myproxy:
            self.myproxy = MyProxyServer(Host(self.sim, MYPROXY_HOST))

    # -- sites ---------------------------------------------------------------
    def add_site(
        self,
        name: str,
        scheduler: str = "pbs",
        cpus: int = 16,
        arch: str = "INTEL",
        memory: int = 512,
        allocation_cost: float = 0.0,
        register_mds: bool = True,
        mds_interval: float = 60.0,
        **lrm_kwargs,
    ) -> Site:
        gk_host = Host(self.sim, f"{name}-gk", site=name)
        lrm_host = Host(self.sim, f"{name}-lrm", site=name)
        lrm = make_lrm(scheduler, lrm_host, cpus, **lrm_kwargs)
        gridmap = GridMap()
        for user in self.users.values():
            gridmap.add(user.dn, f"{name}_{user.name}")
        authorizer = GSIAuthorizer.for_ca(self.ca, gridmap) \
            if self.use_gsi else None
        gatekeeper = Gatekeeper(gk_host, lrm_contact=lrm_host.name,
                                authorizer=authorizer, site=name)
        site = Site(name=name, gk_host=gk_host, lrm_host=lrm_host,
                    lrm=lrm, gatekeeper=gatekeeper, gridmap=gridmap,
                    cpus=cpus, arch=arch, memory=memory,
                    allocation_cost=allocation_cost)
        if register_mds and self.giis is not None:
            site.registrar = ResourceRegistrar(
                gk_host, GIIS_HOST, lambda s=site: self._site_ad(s),
                interval=mds_interval, ttl=mds_interval * 2.5)
        self.sites[name] = site
        return site

    def _site_ad(self, site: Site):
        info = site.lrm.queue_info()
        return resource_ad(
            name=site.name,
            contact=site.contact,
            lrm_type=site.lrm.flavor,
            total_cpus=site.cpus,
            free_cpus=info["free_slots"],
            queued_jobs=info["queued_jobs"],
            arch=site.arch,
            memory=site.memory,
            site=site.name,
            allocation_cost=site.allocation_cost,
        )

    # -- users / agents --------------------------------------------------------
    def add_user(self, name: str) -> GridUser:
        user = GridUser(name, self.ca, now=self.sim.now)
        self.users[name] = user
        for site in self.sites.values():
            site.gridmap.add(user.dn, f"{site.name}_{name}")
        return user

    def add_agent(
        self,
        name: str,
        broker: Optional[Broker] = None,
        broker_kind: str = "",
        proxy_lifetime: float = 12 * 3600.0,
        myproxy: bool = False,
        personal_pool: bool = True,
        warn_threshold: float = 3600.0,
    ) -> CondorGAgent:
        """Create a user + their desktop agent on `submit-<name>`."""
        user = self.users.get(name) or self.add_user(name)
        host = Host(self.sim, f"submit-{name}")
        proxy = user.proxy(now=self.sim.now, lifetime=proxy_lifetime) \
            if self.use_gsi else None
        myproxy_cfg = None
        if myproxy and self.myproxy is not None and proxy is not None:
            long_proxy = user.proxy(now=self.sim.now,
                                    lifetime=7 * 86400.0)
            self.myproxy._store[name] = (f"{name}-pass", long_proxy)
            myproxy_cfg = {"host": MYPROXY_HOST, "username": name,
                           "passphrase": f"{name}-pass",
                           "lifetime": proxy_lifetime}
        if broker is None and broker_kind:
            broker = self.make_broker(broker_kind, host)
        agent = CondorGAgent(
            host, name,
            proxy=proxy,
            broker=broker,
            myproxy=myproxy_cfg,
            glidein_binaries_url=self.binaries_url,
            personal_pool=personal_pool,
            warn_threshold=warn_threshold,
        )
        # Brokers that talk to GSI-protected services need the user's
        # credential; wire it in once the credential monitor exists.
        if broker is not None and agent.credmon is not None and \
                getattr(broker, "credential_source", False) is None:
            broker.credential_source = agent.credmon.credential_source
        self.agents[name] = agent
        return agent

    def make_broker(self, kind: str, host: Host,
                    **kwargs) -> Broker:
        if kind == "userlist":
            return UserListBroker([s.contact for s in self.sites.values()])
        if kind == "mds":
            return MDSBroker(host, GIIS_HOST, **kwargs)
        if kind == "queue-aware":
            return QueueAwareBroker(
                host, [s.contact for s in self.sites.values()], **kwargs)
        raise ValueError(f"unknown broker kind {kind!r}")

    @property
    def binaries_url(self) -> str:
        if self.repo is None:
            return ""
        return self.repo.url(CONDOR_BINARIES)

    # -- running ------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def run_until_quiet(self, check_interval: float = 50.0,
                        max_time: float = 10**7) -> None:
        """Run until every agent's every job is terminal (or max_time)."""
        guard = {"done": False}

        def watchdog():
            while self.sim.now < max_time:
                yield self.sim.timeout(check_interval)
                if all(agent.all_terminal()
                       for agent in self.agents.values()):
                    guard["done"] = True
                    return

        self.sim.spawn(watchdog())
        while not guard["done"] and self.sim.now < max_time:
            target = min(self.sim.now + 10_000.0, max_time)
            self.sim.run(until=target)

    # -- metrics shortcuts ----------------------------------------------------
    def total_cpu_seconds(self) -> float:
        return sum(site.lrm.total_busy_time for site in self.sites.values())

    def cost_report(self, user: str) -> dict:
        """Per-site and total cost for one user (§1: users "do care...
        how much these tasks will cost").

        Each site charges ``allocation_cost`` per CPU-hour consumed by
        the user's site-local account(s).
        """
        per_site: dict[str, float] = {}
        for site in self.sites.values():
            cpu_seconds = sum(
                usage for account, usage in site.lrm.user_usage.items()
                if user in account)
            per_site[site.name] = (cpu_seconds / 3600.0
                                   * site.allocation_cost)
        per_site["total"] = sum(per_site.values())
        return per_site
