"""Testbed builder: whole multi-site grids in a few lines.

Assembles everything a Condor-G experiment needs: a CA and per-site
gridmaps (GSI), gatekeepers + local schedulers (one pair of hosts per
site, so interface-machine crashes never kill the cluster), MDS
registration, a central GridFTP repository holding the Condor binaries
for GlideIn bootstrap, and per-user agents on their own submit machines.

This is the module the examples and benchmarks drive; see
``examples/quickstart.py`` for the canonical usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional

from ..compat import deprecated
from ..condor.jobs import reset_cluster_ids
from ..core.api import CondorGAgent
from ..core.broker import Broker, MDSBroker, QueueAwareBroker, UserListBroker
from ..core.job import reset_grid_job_ids
from ..data.broker import DataAwareBroker
from ..factory.daemon import GlideInFactory
from ..factory.policy import FactoryPolicy
from ..data.catalog import CATALOG_HOST, ReplicaCatalog, dataset_path
from ..data.services import DataServices
from ..data.transfer import DTS_HOST, TransferScheduler
from ..gass.files import SimFile
from ..gram.gatekeeper import Gatekeeper
from ..gridftp.server import GridFTPServer
from ..gsi.auth import GridMap, GSIAuthorizer
from ..gsi.crypto import reset_oracle
from ..gsi.myproxy import MyProxyServer
from ..gsi.pki import CertificateAuthority
from ..gsi.proxy import GridUser
from ..lrm.base import LocalResourceManager
from ..lrm.flavors import make_lrm
from ..mds.giis import GIIS, ResourceRegistrar
from ..mds.schema import resource_ad
from ..sim.failures import FailureInjector
from ..sim.hosts import Host
from ..sim.kernel import Simulator
from ..sim.network import Network
from ..workloads.synthetic import SyntheticTraffic
from .config import AgentSpec, SiteSpec, TestbedConfig

GIIS_HOST = "mds"
REPO_HOST = "condor-repo"
MYPROXY_HOST = "myproxy"
CONDOR_BINARIES = "condor/binaries.tar"


@dataclass
class Site:
    """One administrative domain: a gatekeeper and a cluster behind it."""

    name: str
    gk_host: Host
    lrm_host: Host
    lrm: LocalResourceManager
    gatekeeper: Gatekeeper
    gridmap: GridMap
    cpus: int
    arch: str = "INTEL"
    memory: int = 512
    allocation_cost: float = 0.0
    registrar: Optional[ResourceRegistrar] = None
    #: the site's storage element (repro.data), if configured
    se_host: Optional[Host] = None
    se: Optional[GridFTPServer] = None
    storage: Optional[float] = None
    #: autoscaling policy (from SiteSpec.factory): agents' factories
    #: provision glideins here within these bounds
    factory_policy: Optional[FactoryPolicy] = None

    @property
    def contact(self) -> str:
        return self.gk_host.name

    def queue_depth(self) -> int:
        return self.lrm.depth()


_SITE_FIELDS = frozenset(
    f.name for f in fields(SiteSpec)) - {"name", "lrm_options"}

_DEPRECATION = ("%s is deprecated; build a %s (repro.grid.config) and "
                "pass it instead")


class GridTestbed:
    """A multi-institutional grid in a box.

    Build one declaratively from a :class:`TestbedConfig`
    (:meth:`from_config`), or imperatively through the legacy kwargs of
    ``__init__`` / ``add_site`` / ``add_agent`` -- the kwargs forms are
    deprecated shims that construct the equivalent spec internally.
    """

    def __init__(self, config: Optional[TestbedConfig] = None, **kwargs):
        if config is not None:
            if kwargs:
                raise TypeError(
                    "pass either a TestbedConfig or legacy kwargs, not both")
            if not isinstance(config, TestbedConfig):
                raise TypeError(
                    f"expected TestbedConfig, got {type(config).__name__}")
        else:
            if kwargs:
                deprecated(
                    _DEPRECATION % ("GridTestbed(**kwargs)",
                                    "TestbedConfig"),
                    stacklevel=3)
            config = TestbedConfig(**kwargs)
        self.config = config
        # Restart the module-level id counters so a testbed's ids are a
        # pure function of its seed.  Without this, the second build of
        # the same (scenario, seed) in one process numbers its jobs and
        # keys from wherever the first build left off, and the
        # determinism audit (repro.chaos.digest) flags a divergence on
        # the very first trace record.
        reset_grid_job_ids()
        reset_cluster_ids()
        reset_oracle()
        self.sim = Simulator(seed=config.seed,
                             trace_max_records=config.trace_max_records)
        self.net = Network(self.sim, latency=config.latency,
                           jitter=config.jitter,
                           loss_rate=config.loss_rate)
        self.failures = FailureInjector(self.sim)
        self.use_gsi = config.use_gsi
        self.ca = CertificateAuthority("TestGrid")
        self.sites: dict[str, Site] = {}
        self.users: dict[str, GridUser] = {}
        self.agents: dict[str, CondorGAgent] = {}
        self.factories: dict[str, GlideInFactory] = {}
        self.traffic: Optional[SyntheticTraffic] = None
        self.giis: Optional[GIIS] = None
        self.repo: Optional[GridFTPServer] = None
        self.myproxy: Optional[MyProxyServer] = None
        self.data_services: Optional[DataServices] = None
        self.replica_catalog: Optional[ReplicaCatalog] = None
        self.transfer_scheduler: Optional[TransferScheduler] = None
        if config.with_mds:
            self.giis = GIIS(Host(self.sim, GIIS_HOST))
        if config.with_repo:
            repo_host = Host(self.sim, REPO_HOST)
            self.repo = GridFTPServer(repo_host)
            self.repo.publish(CONDOR_BINARIES, size=5_000_000)
        if config.with_myproxy:
            self.myproxy = MyProxyServer(Host(self.sim, MYPROXY_HOST))
        # Declarative topology: sites first (agents' brokers snapshot
        # site contacts), then plain users, then agents.
        for site_spec in config.sites:
            self.add_site(site_spec)
        self._seed_datasets(config.datasets)
        for user_name in config.extra_users:
            self.add_user(user_name)
        for agent_spec in config.agents:
            self.add_agent(agent_spec)
        if config.traffic is not None:
            if not self.agents:
                raise ValueError("TestbedConfig.traffic needs agents")
            self.traffic = SyntheticTraffic(
                list(self.agents.values()), config.traffic)

    @classmethod
    def from_config(cls, config: TestbedConfig,
                    seed: Optional[int] = None) -> "GridTestbed":
        """Build the grid a :class:`TestbedConfig` describes.

        `seed` (if given) overrides ``config.seed``, which is how
        scenario builders reuse one topology value across seeds.
        """
        if seed is not None:
            config = config.with_seed(seed)
        return cls(config)

    # -- sites ---------------------------------------------------------------
    def add_site(self, site, **kwargs) -> Site:
        """Add a site from a :class:`SiteSpec` (or legacy name+kwargs)."""
        if isinstance(site, SiteSpec):
            if kwargs:
                raise TypeError(
                    "pass either a SiteSpec or legacy kwargs, not both")
            spec = site
        else:
            deprecated(
                _DEPRECATION % ("add_site(name, **kwargs)", "SiteSpec"),
                stacklevel=3)
            known = {k: kwargs.pop(k) for k in list(kwargs)
                     if k in _SITE_FIELDS}
            spec = SiteSpec(name=site, lrm_options=kwargs, **known)
        name = spec.name
        gk_host = Host(self.sim, f"{name}-gk", site=name)
        lrm_host = Host(self.sim, f"{name}-lrm", site=name)
        lrm = make_lrm(spec.scheduler, lrm_host, spec.cpus,
                       **spec.lrm_options)
        gridmap = GridMap()
        for user in self.users.values():
            gridmap.add(user.dn, f"{name}_{user.name}")
        authorizer = GSIAuthorizer.for_ca(self.ca, gridmap) \
            if self.use_gsi else None
        gatekeeper = Gatekeeper(gk_host, lrm_contact=lrm_host.name,
                                authorizer=authorizer, site=name,
                                max_jobmanagers=spec.max_jobmanagers,
                                max_user_jobmanagers=(
                                    spec.max_user_jobmanagers),
                                admission=spec.admission)
        site = Site(name=name, gk_host=gk_host, lrm_host=lrm_host,
                    lrm=lrm, gatekeeper=gatekeeper, gridmap=gridmap,
                    cpus=spec.cpus, arch=spec.arch, memory=spec.memory,
                    allocation_cost=spec.allocation_cost,
                    factory_policy=spec.factory)
        if spec.storage:
            # The site's storage element: a persistent GridFTP server on
            # its own machine, so gatekeeper crashes never lose data.
            self._ensure_data_services()
            site.se_host = Host(self.sim, f"{name}-se", site=name)
            site.se = GridFTPServer(site.se_host, bandwidth=spec.storage)
            site.storage = spec.storage
            self.data_services.se_of[gk_host.name] = site.se_host.name
        if spec.register_mds and self.giis is not None:
            site.registrar = ResourceRegistrar(
                gk_host, GIIS_HOST, lambda s=site: self._site_ad(s),
                interval=spec.mds_interval, ttl=spec.mds_interval * 2.5)
        self.sites[name] = site
        return site

    # -- data services (repro.data) -------------------------------------------
    def _ensure_data_services(self) -> None:
        """Bring up the replica catalog + transfer scheduler once, the
        first time anything needs them (a site with storage)."""
        if self.data_services is not None:
            return
        config = self.config
        self.data_services = DataServices(
            catalog_host=CATALOG_HOST, dts_host=DTS_HOST,
            link_bandwidth=config.data_link_bandwidth)
        self.replica_catalog = ReplicaCatalog(
            Host(self.sim, CATALOG_HOST))
        self.transfer_scheduler = TransferScheduler(
            Host(self.sim, DTS_HOST),
            catalog_host=CATALOG_HOST,
            link_bandwidth=config.data_link_bandwidth,
            max_streams=config.data_max_streams)

    def _seed_datasets(self, datasets) -> None:
        """Pre-place each dataset's replicas at t=0 (direct file puts,
        no RPC, no bandwidth) and seed the catalog to match."""
        for ds in datasets:
            path = dataset_path(ds.name)
            replicas: dict[str, str] = {}
            checksum = SimFile(path, size=ds.size).checksum
            for site_name in ds.replicas:
                site = self.sites.get(site_name)
                if site is None or site.se is None:
                    raise ValueError(
                        f"dataset {ds.name!r} names replica site "
                        f"{site_name!r}, which has no storage element")
                site.se.files.put(SimFile(path, size=ds.size))
                replicas[site.se_host.name] = site.se.url(path)
            if self.replica_catalog is None:
                raise ValueError(
                    f"dataset {ds.name!r} configured but no site has "
                    "storage (set SiteSpec.storage)")
            self.replica_catalog.seed(ds.name, ds.size, checksum,
                                      replicas=replicas)

    def _site_ad(self, site: Site):
        info = site.lrm.queue_info()
        return resource_ad(
            name=site.name,
            contact=site.contact,
            lrm_type=site.lrm.flavor,
            total_cpus=site.cpus,
            free_cpus=info["free_slots"],
            queued_jobs=info["queued_jobs"],
            arch=site.arch,
            memory=site.memory,
            site=site.name,
            allocation_cost=site.allocation_cost,
        )

    # -- users / agents --------------------------------------------------------
    def add_user(self, name: str) -> GridUser:
        user = GridUser(name, self.ca, now=self.sim.now)
        self.users[name] = user
        for site in self.sites.values():
            site.gridmap.add(user.dn, f"{site.name}_{name}")
        return user

    def add_agent(self, agent_spec, broker: Optional[Broker] = None,
                  **kwargs) -> CondorGAgent:
        """Create a user + their desktop agent on `submit-<name>`.

        Takes an :class:`AgentSpec` (or a legacy name+kwargs).  `broker`
        stays a runtime argument in both forms: a live Broker instance
        is not config-value material (``AgentSpec.broker_kind`` is).
        """
        if isinstance(agent_spec, AgentSpec):
            if kwargs:
                raise TypeError(
                    "pass either an AgentSpec or legacy kwargs, not both")
            spec = agent_spec
        else:
            deprecated(
                _DEPRECATION % ("add_agent(name, **kwargs)", "AgentSpec"),
                stacklevel=3)
            spec = AgentSpec(name=agent_spec, **kwargs)
        name = spec.name
        user = self.users.get(name) or self.add_user(name)
        host = Host(self.sim, f"submit-{name}")
        proxy = user.proxy(now=self.sim.now, lifetime=spec.proxy_lifetime) \
            if self.use_gsi else None
        myproxy_cfg = None
        if spec.myproxy and self.myproxy is not None and proxy is not None:
            long_proxy = user.proxy(now=self.sim.now,
                                    lifetime=7 * 86400.0)
            self.myproxy._store[name] = (f"{name}-pass", long_proxy)
            myproxy_cfg = {"host": MYPROXY_HOST, "username": name,
                           "passphrase": f"{name}-pass",
                           "lifetime": spec.proxy_lifetime}
        if broker is None and spec.broker_kind:
            broker = self.make_broker(spec.broker_kind, host)
        agent = CondorGAgent(
            host, name,
            proxy=proxy,
            broker=broker,
            myproxy=myproxy_cfg,
            glidein_binaries_url=self.binaries_url,
            personal_pool=spec.personal_pool,
            negotiation_interval=spec.negotiation_interval,
            claim_reuse=spec.claim_reuse,
            warn_threshold=spec.warn_threshold,
            max_submitted_per_resource=spec.max_submitted_per_resource,
            data_services=self.data_services,
            grid_monitor=spec.grid_monitor,
        )
        # Brokers that talk to GSI-protected services need the user's
        # credential; wire it in once the credential monitor exists.
        if broker is not None and agent.credmon is not None and \
                getattr(broker, "credential_source", False) is None:
            broker.credential_source = agent.credmon.credential_source
        # Factory-managed sites: every personal-pool agent gets its own
        # autoscaler over them (Condor-G's per-user architecture -- the
        # factory serves one user's pool, not the grid).
        managed = {site.name: (site.contact, site.factory_policy)
                   for site in self.sites.values()
                   if site.factory_policy is not None}
        if managed and spec.personal_pool:
            agent.factory = GlideInFactory(agent, managed)
            self.factories[name] = agent.factory
        self.agents[name] = agent
        return agent

    def make_broker(self, kind: str, host: Host,
                    **kwargs) -> Broker:
        if kind == "userlist":
            return UserListBroker([s.contact for s in self.sites.values()])
        if kind == "mds":
            return MDSBroker(host, GIIS_HOST, **kwargs)
        if kind == "queue-aware":
            return QueueAwareBroker(
                host, [s.contact for s in self.sites.values()], **kwargs)
        if kind == "data-aware":
            if self.data_services is None:
                raise ValueError(
                    "data-aware broker needs data services; give at "
                    "least one site SiteSpec.storage")
            return DataAwareBroker(
                host, [s.contact for s in self.sites.values()],
                self.data_services, **kwargs)
        raise ValueError(f"unknown broker kind {kind!r}")

    @property
    def binaries_url(self) -> str:
        if self.repo is None:
            return ""
        return self.repo.url(CONDOR_BINARIES)

    # -- running ------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def snapshot(self, scenario: Optional[str] = None, plan=None):
        """Checkpoint the testbed's full state right now.

        Convenience wrapper over :func:`repro.sim.snapshot.capture`;
        pass the registered scenario name (and the applied fault plan,
        if any) to make the snapshot restorable in a fresh process.
        """
        from ..sim.snapshot import capture

        return capture(self, scenario=scenario, plan=plan)

    def run_until_quiet(self, check_interval: float = 50.0,
                        max_time: float = 10**7) -> None:
        """Run until every agent's every job is terminal (or max_time)."""
        guard = {"done": False}

        def watchdog():
            while self.sim.now < max_time:
                yield self.sim.timeout(check_interval)
                if self.traffic is not None and not self.traffic.finished:
                    continue    # the arrival trace is still being replayed
                if all(agent.all_terminal()
                       for agent in self.agents.values()):
                    guard["done"] = True
                    return

        self.sim.spawn(watchdog())
        while not guard["done"] and self.sim.now < max_time:
            target = min(self.sim.now + 10_000.0, max_time)
            self.sim.run(until=target)

    # -- metrics shortcuts ----------------------------------------------------
    def total_cpu_seconds(self) -> float:
        return sum(site.lrm.total_busy_time for site in self.sites.values())

    def cost_report(self, user: str) -> dict:
        """Per-site and total cost for one user (§1: users "do care...
        how much these tasks will cost").

        Each site charges ``allocation_cost`` per CPU-hour consumed by
        the user's site-local account(s).
        """
        per_site: dict[str, float] = {}
        for site in self.sites.values():
            cpu_seconds = sum(
                usage for account, usage in site.lrm.user_usage.items()
                if user in account)
            per_site[site.name] = (cpu_seconds / 3600.0
                                   * site.allocation_cost)
        per_site["total"] = sum(per_site.values())
        return per_site

    def cost_report_all(self) -> dict:
        """Every user's cost report plus the grid-wide total.

        Convenience wrapper over :func:`repro.grid.metrics.
        grid_cost_report`, which is where the aggregation logic lives.
        """
        from .metrics import grid_cost_report

        return grid_cost_report(self)
