"""Typed, frozen testbed configuration.

:class:`GridTestbed` grew three kwargs-sprawl entry points
(``__init__`` / ``add_site`` / ``add_agent``); a topology built through
them exists only as a sequence of imperative calls, which nothing can
introspect, compare, or ship across a process boundary.  These dataclasses
are the declarative replacement: a :class:`TestbedConfig` value *is* the
topology -- hashable-by-value, seed-swappable via :meth:`with_seed`, and
buildable with :meth:`repro.grid.testbed.GridTestbed.from_config`.

The old kwargs entry points keep working through a deprecation shim that
constructs these specs internally (see ``testbed.py``), so call sites
migrate incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..factory.policy import FactoryPolicy
from ..gram.gatekeeper import AdmissionPolicy
from ..workloads.synthetic import TrafficProfile

__all__ = [
    "AdmissionPolicy", "AgentSpec", "DatasetSpec", "FactoryPolicy",
    "SiteSpec", "TestbedConfig", "TrafficProfile",
]


@dataclass(frozen=True)
class SiteSpec:
    """One administrative domain: gatekeeper + cluster behind it."""

    name: str
    scheduler: str = "pbs"
    cpus: int = 16
    arch: str = "INTEL"
    memory: int = 512
    allocation_cost: float = 0.0
    register_mds: bool = True
    mds_interval: float = 60.0
    #: gatekeeper admission caps: total live JobManagers on the
    #: interface machine, and per-user fair-share cap (None = unlimited)
    max_jobmanagers: Optional[int] = None
    max_user_jobmanagers: Optional[int] = None
    #: gatekeeper admission control: submission rate limit + queue-depth
    #: backpressure (None = open door, the paper-era default)
    admission: Optional[AdmissionPolicy] = None
    #: autoscaling policy for this site: every personal-pool agent's
    #: GlideInFactory provisions here within these bounds (None = the
    #: site is not factory-managed; explicit glide_in still works)
    factory: Optional[FactoryPolicy] = None
    #: extra keyword arguments for the LRM flavor (e.g. Condor-pool knobs)
    lrm_options: dict[str, Any] = field(default_factory=dict)
    #: storage-element GridFTP bandwidth in bytes/s (None = no SE at
    #: this site; dataset jobs cannot be staged here)
    storage: Optional[float] = None


@dataclass(frozen=True)
class DatasetSpec:
    """One logical dataset pre-placed on the grid at t=0.

    ``replicas`` names the sites (by :class:`SiteSpec` name) whose
    storage elements start out holding a copy; the replica catalog is
    seeded to match.
    """

    name: str
    size: int = 1_000_000
    replicas: tuple[str, ...] = ()


@dataclass(frozen=True)
class AgentSpec:
    """One user's desktop agent (the user is created implicitly)."""

    name: str
    broker_kind: str = ""   # "" | "userlist" | "mds" | "queue-aware" | "data-aware"
    proxy_lifetime: float = 12 * 3600.0
    myproxy: bool = False
    personal_pool: bool = True
    #: personal-pool negotiation cycle period
    negotiation_interval: float = 20.0
    #: schedd holds startd claims between jobs and re-matches a
    #: compatible idle job locally, skipping a negotiation round-trip
    claim_reuse: bool = False
    warn_threshold: float = 3600.0
    #: client-side fair-share throttle: cap on this user's in-flight
    #: (SUBMITTING/PENDING/ACTIVE) jobs per remote resource
    max_submitted_per_resource: Optional[int] = None
    #: Grid Monitor fan-in (§5.1): the GridManager launches one status
    #: monitor per gatekeeper, which batches all of this user's
    #: JobManager states into one report per interval; per-job polling
    #: drops to a slow backstop.  Like ``claim_reuse`` this is a
    #: behavioural opt-in, not a perf flag -- it changes the RPC
    #: pattern (and digests) when enabled.
    grid_monitor: bool = False


@dataclass(frozen=True)
class TestbedConfig:
    """A whole grid-in-a-box, as a value.

    ``sites`` and ``agents`` are built in declaration order, matching the
    equivalent sequence of ``add_site`` / ``add_agent`` calls;
    ``extra_users`` adds plain users (no agent) before any agents.
    Workload submission stays imperative -- a config describes the grid,
    not the jobs.
    """

    __test__ = False    # pytest: not a test class, despite the name

    seed: int = 0
    latency: float = 0.05
    jitter: float = 0.01
    loss_rate: float = 0.0
    use_gsi: bool = False
    with_mds: bool = True
    with_repo: bool = True
    with_myproxy: bool = False
    trace_max_records: Optional[int] = None
    sites: tuple[SiteSpec, ...] = ()
    agents: tuple[AgentSpec, ...] = ()
    extra_users: tuple[str, ...] = ()
    #: logical datasets pre-placed at t=0; non-empty (or any site with
    #: ``storage``) brings up the replica catalog + transfer scheduler
    datasets: tuple[DatasetSpec, ...] = ()
    #: WAN bandwidth the transfer scheduler paces each SE->SE link to
    data_link_bandwidth: float = 5_000_000.0
    #: concurrent third-party streams allowed per SE->SE link
    data_max_streams: int = 2
    #: bursty grid-user submission process replayed into the agents
    #: (None = workloads stay imperative, the historical default)
    traffic: Optional[TrafficProfile] = None

    def with_seed(self, seed: int) -> "TestbedConfig":
        """The same topology under a different seed (scenario builders)."""
        return replace(self, seed=seed)

    def with_sites(self, *sites: SiteSpec) -> "TestbedConfig":
        return replace(self, sites=self.sites + sites)

    def with_agents(self, *agents: AgentSpec) -> "TestbedConfig":
        return replace(self, agents=self.agents + agents)

    def with_datasets(self, *datasets: DatasetSpec) -> "TestbedConfig":
        return replace(self, datasets=self.datasets + datasets)
