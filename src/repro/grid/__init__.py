"""Testbed builder, run metrics, and the named scenario registry."""

from .config import (
    AdmissionPolicy,
    AgentSpec,
    DatasetSpec,
    FactoryPolicy,
    SiteSpec,
    TestbedConfig,
    TrafficProfile,
)
from .metrics import ConcurrencyStats, concurrency, queue_waits, timeline
from .scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
    register,
    scenario_names,
    three_site_grid,
)
from .testbed import (
    CONDOR_BINARIES,
    GIIS_HOST,
    GridTestbed,
    MYPROXY_HOST,
    REPO_HOST,
    Site,
)

__all__ = [
    "AdmissionPolicy", "AgentSpec", "CONDOR_BINARIES", "ConcurrencyStats",
    "DatasetSpec", "FactoryPolicy", "GIIS_HOST", "GridTestbed",
    "MYPROXY_HOST", "REPO_HOST", "SCENARIOS", "Scenario", "Site",
    "SiteSpec", "TestbedConfig", "TrafficProfile", "concurrency",
    "get_scenario", "queue_waits", "register", "scenario_names",
    "three_site_grid", "timeline",
]
