"""Testbed builder, run metrics, and the named scenario registry."""

from .metrics import ConcurrencyStats, concurrency, queue_waits, timeline
from .scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
    register,
    scenario_names,
    three_site_grid,
)
from .testbed import (
    CONDOR_BINARIES,
    GIIS_HOST,
    GridTestbed,
    MYPROXY_HOST,
    REPO_HOST,
    Site,
)

__all__ = [
    "CONDOR_BINARIES", "ConcurrencyStats", "GIIS_HOST", "GridTestbed",
    "MYPROXY_HOST", "REPO_HOST", "SCENARIOS", "Scenario", "Site",
    "concurrency", "get_scenario", "queue_waits", "register",
    "scenario_names", "three_site_grid", "timeline",
]
