"""Testbed builder and run metrics."""

from .metrics import ConcurrencyStats, concurrency, queue_waits, timeline
from .testbed import (
    CONDOR_BINARIES,
    GIIS_HOST,
    GridTestbed,
    MYPROXY_HOST,
    REPO_HOST,
    Site,
)

__all__ = [
    "CONDOR_BINARIES", "ConcurrencyStats", "GIIS_HOST", "GridTestbed",
    "MYPROXY_HOST", "REPO_HOST", "Site", "concurrency", "queue_waits",
    "timeline",
]
