"""MDS-2: the Grid information service (paper §3.3).

Two protocols on top of the RPC substrate:

* **GRRP** (Grid Resource Registration Protocol): a resource pushes a
  soft-state registration ("I exist, here is my ad") to an index; the
  registration expires unless renewed, so crashed resources age out.
* **GRIP** (Grid Resource Information Protocol): clients query an index
  (or a resource directly) for resource ads matching a ClassAd
  constraint expression.

The index service (GIIS) is what the Condor-G personal resource broker
queries to build its candidate list (§4.4).
"""

from .giis import GIIS, ResourceRegistrar, grip_query
from .schema import resource_ad

__all__ = ["GIIS", "ResourceRegistrar", "grip_query", "resource_ad"]
