"""GIIS index service, GRRP registration, GRIP query."""

from __future__ import annotations

from typing import Callable, Optional

from ..classads import ClassAd, EvalContext, is_true, parse
from ..sim.hosts import Host
from ..sim.rpc import Service, call


class GIIS(Service):
    """Grid Index Information Service: soft-state registry of resource ads.

    Registrations carry a TTL; an entry whose TTL lapses without renewal
    stops appearing in query results (the resource probably crashed).
    """

    service_name = "giis"

    def __init__(self, host: Host, authorizer=None,
                 default_ttl: float = 120.0):
        super().__init__(host, authorizer=authorizer)
        self.default_ttl = default_ttl
        # name -> (ad, expiry_time)
        self._registry: dict[str, tuple[ClassAd, float]] = {}
        # constraint text -> parsed expression.  Brokers re-issue the
        # same handful of constraint strings every probe round; parsing
        # is pure, so the cache cannot change query results.
        self._parse_cache: dict[str, object] = {}

    # -- GRRP ---------------------------------------------------------------
    def handle_register(self, ctx, ad: ClassAd,
                        ttl: Optional[float] = None) -> bool:
        name = ad.get("Name")
        if not isinstance(name, str) or not name:
            raise ValueError("resource ad needs a string Name")
        expiry = self.sim.now + (ttl or self.default_ttl)
        self._registry[name] = (ad, expiry)
        self.sim.trace.log("giis", "register", name=name, expiry=expiry)
        return True

    def handle_unregister(self, ctx, name: str) -> bool:
        return self._registry.pop(name, None) is not None

    # -- GRIP ---------------------------------------------------------------
    def handle_query(self, ctx, constraint: str = "true") -> list[ClassAd]:
        """All live ads whose attributes satisfy `constraint`."""
        expr = self._parse_cache.get(constraint)
        if expr is None:
            expr = self._parse_cache[constraint] = parse(constraint)
        out = []
        for name, (ad, expiry) in sorted(self._registry.items()):
            if expiry < self.sim.now:
                continue
            value = expr.eval(EvalContext(my=ad, now=self.sim.now))
            if is_true(value):
                out.append(ad)
        return out

    def live_count(self) -> int:
        return sum(1 for _, expiry in self._registry.values()
                   if expiry >= self.sim.now)


class ResourceRegistrar:
    """A resource-side process renewing its GRRP registration.

    ``ad_source`` is called at each renewal to produce the *current*
    resource ad (dynamic load included).  If the host crashes the process
    dies with it, registrations age out, and the resource vanishes from
    broker candidate lists -- restoring on restart via a boot action.
    """

    def __init__(
        self,
        host: Host,
        giis_host: str,
        ad_source: Callable[[], ClassAd],
        interval: float = 60.0,
        ttl: float = 150.0,
        credential=None,
        restart_on_boot: bool = True,
    ):
        self.host = host
        self.sim = host.sim
        self.giis_host = giis_host
        self.ad_source = ad_source
        self.interval = interval
        self.ttl = ttl
        self.credential = credential
        host.spawn(self._loop(), name=f"grrp:{host.name}")
        if restart_on_boot:
            host.add_boot_action(lambda h: h.spawn(
                self._loop(), name=f"grrp:{h.name}"))

    def _loop(self):
        while True:
            try:
                yield from call(self.host, self.giis_host, "giis",
                                "register", timeout=30.0,
                                credential=self.credential,
                                ad=self.ad_source(), ttl=self.ttl)
            except Exception:  # noqa: BLE001 - registration is best-effort
                pass
            yield self.sim.timeout(self.interval)


def grip_query(src: Host, giis_host: str, constraint: str = "true",
               credential=None, timeout: float = 30.0):
    """Query a GIIS for resource ads matching a ClassAd constraint."""
    ads = yield from call(src, giis_host, "giis", "query", timeout=timeout,
                          credential=credential, constraint=constraint)
    return ads
