"""The resource-information schema published through MDS.

A gatekeeper publishes one ad per resource describing identity, the
local scheduler behind it, static capacity, and dynamic load.  Attribute
names follow Condor conventions so ClassAd Requirements written against
pool startds also work against MDS resource ads.
"""

from __future__ import annotations

from typing import Optional

from ..classads import ClassAd


def resource_ad(
    name: str,
    contact: str,
    lrm_type: str,
    total_cpus: int,
    free_cpus: int,
    queued_jobs: int = 0,
    arch: str = "INTEL",
    opsys: str = "LINUX",
    memory: int = 256,
    disk: int = 100_000,
    site: str = "",
    allocation_cost: float = 0.0,
) -> ClassAd:
    """Build a resource ad with the standard schema."""
    ad = ClassAd()
    ad["Name"] = name
    ad["Contact"] = contact
    ad["GramVersion"] = 2
    ad["LRMType"] = lrm_type
    ad["TotalCpus"] = total_cpus
    ad["FreeCpus"] = free_cpus
    ad["QueuedJobs"] = queued_jobs
    ad["Arch"] = arch
    ad["OpSys"] = opsys
    ad["Memory"] = memory
    ad["Disk"] = disk
    ad["Site"] = site or name
    ad["AllocationCost"] = allocation_cost
    # Estimated queue delay: extremely rough, but monotone in load --
    # exactly the kind of signal the paper says brokers should rank on.
    ad.set_expression(
        "EstimatedWait",
        "ifThenElse(FreeCpus > 0, 0.0, real(QueuedJobs) / TotalCpus)")
    return ad
