"""GridFTP server."""

from __future__ import annotations

from ..gass.files import FileStore, SimFile
from ..sim.hosts import Host
from ..sim.rpc import Service, call

DEFAULT_BANDWIDTH = 10_000_000.0   # bulk-transfer pipes are fat


def make_gsiftp_url(host: str, path: str) -> str:
    return f"gsiftp://{host}/{path.lstrip('/')}"


def parse_gsiftp_url(url: str) -> tuple[str, str]:
    """-> (host, path)."""
    if not url.startswith("gsiftp://"):
        raise ValueError(f"not a gsiftp URL: {url!r}")
    rest = url[len("gsiftp://"):]
    host, _, path = rest.partition("/")
    if not host or not path:
        raise ValueError(f"gsiftp URL needs host and path: {url!r}")
    return host, path


class GridFTPServer(Service):
    """A file server supporting RETR/STOR/SIZE and third-party fetch."""

    service_name = "gridftp"

    def __init__(
        self,
        host: Host,
        authorizer=None,
        bandwidth: float = DEFAULT_BANDWIDTH,
        persistent: bool = True,
        restart_on_boot: bool = True,
    ):
        super().__init__(host, authorizer=authorizer)
        stable_ns = host.stable.namespace("gridftp") if persistent else None
        self.files = FileStore(stable_ns)
        self.bandwidth = bandwidth
        self._corrupt_pending = 0
        if restart_on_boot:
            # The server daemon comes back with the machine (init script);
            # its file store is rebuilt from the same on-disk namespace.
            host.add_boot_action(lambda h: GridFTPServer(
                h, authorizer=authorizer, bandwidth=bandwidth,
                persistent=persistent, restart_on_boot=False))

    def url(self, path: str) -> str:
        return make_gsiftp_url(self.host.name, path)

    def _pay(self, nbytes: int):
        if self.bandwidth and nbytes > 0:
            return self.sim.timeout(nbytes / self.bandwidth)
        return self.sim.timeout(0.0)

    # -- accounting ----------------------------------------------------------
    # Totals live in the simulator's MetricsRegistry (split by server host
    # and by peer) so grid.metrics rollups can read them; the properties
    # keep the old `server.bytes_sent` attribute API working.

    def _account(self, direction: str, nbytes: int, peer: str) -> None:
        m = self.sim.metrics
        m.counter(f"gridftp.bytes_{direction}").inc(nbytes,
                                                    label=self.host.name)
        m.counter("gridftp.transfers").inc(label=peer)

    @property
    def bytes_sent(self) -> int:
        counter = self.sim.metrics.counter("gridftp.bytes_sent")
        return int(counter.labelled(self.host.name))

    @property
    def bytes_received(self) -> int:
        counter = self.sim.metrics.counter("gridftp.bytes_received")
        return int(counter.labelled(self.host.name))

    # -- chaos hook ----------------------------------------------------------
    def corrupt_next(self, n: int = 1) -> None:
        """Silently truncate the next `n` inbound stores by one byte.

        Models a bad disk/NIC: the stored copy is self-consistent (its
        own checksum matches its bytes) but no longer matches the
        checksum the sender advertised, so verification catches it.
        """
        self._corrupt_pending += n

    def _maybe_corrupt(self, f: SimFile) -> SimFile:
        if self._corrupt_pending <= 0 or f.size == 0:
            return f
        self._corrupt_pending -= 1
        damaged = SimFile(f.path, size=f.size - 1,
                          data=f.data[:-1] if f.data else "")
        self.sim.metrics.counter("gridftp.corruptions").inc(
            label=self.host.name)
        self.sim.trace.log(f"gridftp:{self.host.name}", "corrupted",
                           path=f.path, size=damaged.size)
        return damaged

    # -- handlers -----------------------------------------------------------
    def handle_retr(self, ctx, path: str):
        f = self.files.get(path)
        yield self._pay(f.size)
        self._account("sent", f.size, ctx.caller_host)
        self.sim.trace.log(f"gridftp:{self.host.name}", "retr", path=path,
                           size=f.size, to=ctx.caller_host)
        return {"path": f.path, "size": f.size, "data": f.data,
                "checksum": f.checksum}

    def handle_stor(self, ctx, path: str, size: int = 0, data: str = ""):
        f = SimFile(path, size=size, data=data)
        yield self._pay(f.size)
        f = self._maybe_corrupt(f)
        self.files.put(f)
        self._account("received", f.size, ctx.caller_host)
        self.sim.trace.log(f"gridftp:{self.host.name}", "stor", path=path,
                           size=f.size, source=ctx.caller_host)
        return f.size

    def handle_size(self, ctx, path: str) -> int:
        if not self.files.exists(path):
            raise FileNotFoundError(path)
        return self.files.get(path).size

    def handle_checksum(self, ctx, path: str) -> str:
        if not self.files.exists(path):
            raise FileNotFoundError(path)
        return self.files.get(path).checksum

    def handle_delete(self, ctx, path: str) -> bool:
        existed = self.files.exists(path)
        self.files.delete(path)
        return existed

    def handle_list(self, ctx) -> list[str]:
        return self.files.list()

    def handle_fetch_from(self, ctx, src_url: str, dst_path: str):
        """Third-party transfer: pull `src_url` into this server.

        The caller's (delegated) credential is re-used to authenticate
        to the source server on the user's behalf.
        """
        src_host, src_path = parse_gsiftp_url(src_url)
        result = yield from call(self.host, src_host, "gridftp", "retr",
                                 timeout=600.0, credential=ctx.credential,
                                 path=src_path)
        f = SimFile(dst_path, size=result["size"], data=result["data"])
        # Inbound side pays its own pipe too: a third-party move costs
        # source-side *and* destination-side bandwidth.
        yield self._pay(f.size)
        f = self._maybe_corrupt(f)
        self.files.put(f)
        self._account("received", f.size, src_host)
        self.sim.trace.log(f"gridftp:{self.host.name}", "third_party",
                           src=src_url, dst=dst_path, size=f.size)
        return f.size

    # -- local convenience ----------------------------------------------------
    def publish(self, path: str, size: int = 0, data: str = "") -> str:
        self.files.put(SimFile(path, size=size, data=data))
        return self.url(path)
