"""GridFTP server."""

from __future__ import annotations

from ..gass.files import FileStore, SimFile
from ..sim.hosts import Host
from ..sim.rpc import Service, call

DEFAULT_BANDWIDTH = 10_000_000.0   # bulk-transfer pipes are fat


def make_gsiftp_url(host: str, path: str) -> str:
    return f"gsiftp://{host}/{path.lstrip('/')}"


def parse_gsiftp_url(url: str) -> tuple[str, str]:
    """-> (host, path)."""
    if not url.startswith("gsiftp://"):
        raise ValueError(f"not a gsiftp URL: {url!r}")
    rest = url[len("gsiftp://"):]
    host, _, path = rest.partition("/")
    if not host or not path:
        raise ValueError(f"gsiftp URL needs host and path: {url!r}")
    return host, path


class GridFTPServer(Service):
    """A file server supporting RETR/STOR/SIZE and third-party fetch."""

    service_name = "gridftp"

    def __init__(
        self,
        host: Host,
        authorizer=None,
        bandwidth: float = DEFAULT_BANDWIDTH,
        persistent: bool = True,
        restart_on_boot: bool = True,
    ):
        super().__init__(host, authorizer=authorizer)
        stable_ns = host.stable.namespace("gridftp") if persistent else None
        self.files = FileStore(stable_ns)
        self.bandwidth = bandwidth
        self.bytes_sent = 0
        self.bytes_received = 0
        if restart_on_boot:
            # The server daemon comes back with the machine (init script);
            # its file store is rebuilt from the same on-disk namespace.
            host.add_boot_action(lambda h: GridFTPServer(
                h, authorizer=authorizer, bandwidth=bandwidth,
                persistent=persistent, restart_on_boot=False))

    def url(self, path: str) -> str:
        return make_gsiftp_url(self.host.name, path)

    def _pay(self, nbytes: int):
        if self.bandwidth and nbytes > 0:
            return self.sim.timeout(nbytes / self.bandwidth)
        return self.sim.timeout(0.0)

    # -- handlers -----------------------------------------------------------
    def handle_retr(self, ctx, path: str):
        f = self.files.get(path)
        yield self._pay(f.size)
        self.bytes_sent += f.size
        self.sim.trace.log(f"gridftp:{self.host.name}", "retr", path=path,
                           size=f.size, to=ctx.caller_host)
        return {"path": f.path, "size": f.size, "data": f.data}

    def handle_stor(self, ctx, path: str, size: int = 0, data: str = ""):
        f = SimFile(path, size=size, data=data)
        yield self._pay(f.size)
        self.files.put(f)
        self.bytes_received += f.size
        self.sim.trace.log(f"gridftp:{self.host.name}", "stor", path=path,
                           size=f.size, source=ctx.caller_host)
        return f.size

    def handle_size(self, ctx, path: str) -> int:
        if not self.files.exists(path):
            raise FileNotFoundError(path)
        return self.files.get(path).size

    def handle_list(self, ctx) -> list[str]:
        return self.files.list()

    def handle_fetch_from(self, ctx, src_url: str, dst_path: str):
        """Third-party transfer: pull `src_url` into this server.

        The caller's (delegated) credential is re-used to authenticate
        to the source server on the user's behalf.
        """
        src_host, src_path = parse_gsiftp_url(src_url)
        result = yield from call(self.host, src_host, "gridftp", "retr",
                                 timeout=600.0, credential=ctx.credential,
                                 path=src_path)
        f = SimFile(dst_path, size=result["size"], data=result["data"])
        self.files.put(f)
        self.bytes_received += f.size
        self.sim.trace.log(f"gridftp:{self.host.name}", "third_party",
                           src=src_url, dst=dst_path, size=f.size)
        return f.size

    # -- local convenience ----------------------------------------------------
    def publish(self, path: str, size: int = 0, data: str = "") -> str:
        self.files.put(SimFile(path, size=size, data=data))
        return self.url(path)
