"""GridFTP client helpers (``yield from`` generators)."""

from __future__ import annotations

from ..sim.hosts import Host
from ..sim.rpc import call
from .server import parse_gsiftp_url


def gridftp_get(src: Host, url: str, credential=None,
                timeout: float = 600.0):
    host, path = parse_gsiftp_url(url)
    result = yield from call(src, host, "gridftp", "retr", timeout=timeout,
                             credential=credential, path=path)
    return result


def gridftp_put(src: Host, url: str, size: int = 0, data: str = "",
                credential=None, timeout: float = 600.0):
    host, path = parse_gsiftp_url(url)
    result = yield from call(src, host, "gridftp", "stor", timeout=timeout,
                             credential=credential, path=path, size=size,
                             data=data)
    return result


def gridftp_size(src: Host, url: str, credential=None,
                 timeout: float = 60.0):
    host, path = parse_gsiftp_url(url)
    result = yield from call(src, host, "gridftp", "size", timeout=timeout,
                             credential=credential, path=path)
    return result


def gridftp_checksum(src: Host, url: str, credential=None,
                     timeout: float = 60.0):
    host, path = parse_gsiftp_url(url)
    result = yield from call(src, host, "gridftp", "checksum",
                             timeout=timeout, credential=credential,
                             path=path)
    return result


def gridftp_delete(src: Host, url: str, credential=None,
                   timeout: float = 60.0):
    host, path = parse_gsiftp_url(url)
    result = yield from call(src, host, "gridftp", "delete",
                             timeout=timeout, credential=credential,
                             path=path)
    return result


def third_party_transfer(src: Host, from_url: str, to_url: str,
                         credential=None, timeout: float = 1200.0):
    """Ask the destination server to pull `from_url` (data bypasses us).

    The caller's credential is forwarded so the destination can
    authenticate to the source on the user's behalf (GSI delegation).
    """
    dst_host, dst_path = parse_gsiftp_url(to_url)
    result = yield from call(src, dst_host, "gridftp", "fetch_from",
                             timeout=timeout, credential=credential,
                             src_url=from_url, dst_path=dst_path)
    return result
