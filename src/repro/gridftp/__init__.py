"""GridFTP: GSI-authenticated bulk file transfer (paper §5, §6).

Used by the GlideIn bootstrap to fetch Condor executables from a central
repository and by the CMS pipeline to ship event data to the NCSA
repository, including third-party transfers (server-to-server moves
orchestrated by a client that touches none of the data).

URLs: ``gsiftp://<host>/<path>``.  The service name on a host is always
``gridftp``; transfer time is ``size / bandwidth`` at the sending side.
"""

from .server import GridFTPServer, make_gsiftp_url, parse_gsiftp_url
from .client import (
    gridftp_checksum,
    gridftp_delete,
    gridftp_get,
    gridftp_put,
    gridftp_size,
    third_party_transfer,
)

__all__ = [
    "GridFTPServer", "gridftp_checksum", "gridftp_delete", "gridftp_get",
    "gridftp_put", "gridftp_size", "make_gsiftp_url", "parse_gsiftp_url",
    "third_party_transfer",
]
