"""Condor submit-description files (paper §4.1 look and feel).

Users drove Condor-G exactly the way they drove Condor: a submit file
plus ``condor_submit``.  :func:`parse_submit_file` understands the
classic dialect::

    universe    = grid
    executable  = sim.exe
    arguments   = -n 42
    grid_resource = wisc-gk
    runtime     = 300
    walltime    = 3600
    cpus        = 2
    requirements = TARGET.Arch == "INTEL"
    rank        = TARGET.Mips
    environment = A=1 B=2
    queue 3

yielding ``(JobDescription, resource)`` pairs (three identical ones
here).  ``$(Process)`` in ``arguments`` expands per queued instance,
the standard idiom for parameter sweeps.
"""

from __future__ import annotations

from .api import JobDescription


class SubmitFileError(ValueError):
    """Malformed submit description."""


_FLOAT_KEYS = {"runtime", "walltime"}
_INT_KEYS = {"cpus", "input_size", "io_bytes", "exit_code"}


def parse_submit_file(text: str) -> list[tuple[JobDescription, str]]:
    """Parse a submit description; returns [(description, resource)]."""
    attrs: dict[str, str] = {}
    out: list[tuple[JobDescription, str]] = []
    process = 0
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        lowered = line.lower()
        if lowered == "queue" or lowered.startswith("queue "):
            count_text = line[5:].strip()
            try:
                count = int(count_text) if count_text else 1
            except ValueError as exc:
                raise SubmitFileError(
                    f"line {lineno}: bad queue count {count_text!r}"
                ) from exc
            if count < 1:
                raise SubmitFileError(f"line {lineno}: queue count must "
                                      f"be positive")
            for _ in range(count):
                out.append(_build(attrs, process, lineno))
                process += 1
            continue
        key, eq, value = line.partition("=")
        if not eq:
            raise SubmitFileError(
                f"line {lineno}: expected 'key = value' or 'queue'")
        attrs[key.strip().lower()] = value.strip()
    if not out:
        raise SubmitFileError("no 'queue' statement")
    return out


def _build(attrs: dict[str, str], process: int,
           lineno: int) -> tuple[JobDescription, str]:
    kwargs: dict = {}
    resource = attrs.get("grid_resource", "")
    for key, value in attrs.items():
        if key == "grid_resource":
            continue
        if key == "arguments":
            expanded = value.replace("$(process)", str(process)) \
                            .replace("$(Process)", str(process))
            kwargs["arguments"] = tuple(expanded.split())
        elif key == "environment":
            env = {}
            for pair in value.split():
                name, eq, val = pair.partition("=")
                if not eq:
                    raise SubmitFileError(
                        f"line {lineno}: bad environment entry {pair!r}")
                env[name] = val
            kwargs["env"] = env
        elif key in _FLOAT_KEYS:
            kwargs[key] = float(value)
        elif key in _INT_KEYS:
            kwargs[key] = int(value)
        elif key in ("universe", "executable", "requirements", "rank",
                     "stdin_data", "gcat_mss_url"):
            kwargs[key] = value
        else:
            raise SubmitFileError(
                f"unknown submit attribute {key!r}")
    description = JobDescription(**kwargs)
    if description.universe == "grid" and not resource:
        # fine: the broker will place it
        pass
    return description, resource


def submit_from_file(agent, text: str) -> list[str]:
    """condor_submit: parse and submit; returns the new job ids."""
    return [agent.submit(description, resource=resource)
            for description, resource in parse_submit_file(text)]
