"""Replicated job submission ("flooding") with cancel-on-first-start.

Paper §4.4: "In the case of high throughput computations, a simple but
effective technique is to flood candidate resources with requests to
execute jobs.  These can be the actual jobs submitted by the user or
Condor GlideIns...  Monitoring of actual queuing and execution times
allows for the tuning of where to submit subsequent jobs and to migrate
queued jobs."

:class:`FloodingSubmitter` implements the *actual jobs* variant: one
logical job is submitted to several gatekeepers at once; the moment one
replica starts executing, the still-queued replicas are cancelled
(migrating the job's queue position is equivalent to abandoning the
slower queues).  A replica that has already started when another wins is
counted as wasted execution -- the price of this strategy, reported by
the benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from . import job as J
from .api import CondorGAgent, JobDescription


@dataclass
class FloodedJob:
    logical_id: str
    replicas: list[str]
    winner: Optional[str] = None
    state: str = "FLOODED"           # FLOODED -> RUNNING -> DONE|FAILED
    wasted_executions: int = 0
    cancelled_queued: int = 0
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None

    @property
    def is_terminal(self) -> bool:
        return self.state in ("DONE", "FAILED")

    @property
    def is_complete(self) -> bool:
        return self.state == "DONE"


class FloodingSubmitter:
    """Submit each job to several sites; keep whichever starts first."""

    POLL_INTERVAL = 15.0

    def __init__(self, agent: CondorGAgent):
        self.agent = agent
        self.sim = agent.sim
        self._ids = itertools.count(1)
        self.jobs: dict[str, FloodedJob] = {}

    def submit(self, description: JobDescription,
               sites: list[str]) -> str:
        if not sites:
            raise ValueError("flooding needs at least one site")
        logical_id = f"flood-{next(self._ids)}"
        replicas = [self.agent.submit(description, resource=site)
                    for site in sites]
        flooded = FloodedJob(logical_id=logical_id, replicas=replicas,
                             submit_time=self.sim.now)
        self.jobs[logical_id] = flooded
        self.sim.spawn(self._watch(flooded), name=f"flood:{logical_id}")
        self.sim.trace.log("flood", "submitted", logical=logical_id,
                           replicas=len(replicas))
        return logical_id

    def status(self, logical_id: str) -> FloodedJob:
        return self.jobs[logical_id]

    # -- the watcher ------------------------------------------------------------
    def _watch(self, flooded: FloodedJob):
        while True:
            yield self.sim.timeout(self.POLL_INTERVAL)
            statuses = {r: self.agent.status(r)
                        for r in flooded.replicas}
            if flooded.winner is None:
                started = [r for r, s in statuses.items()
                           if s.state in (J.ACTIVE, J.DONE)]
                if started:
                    flooded.winner = started[0]
                    flooded.state = "RUNNING"
                    flooded.start_time = \
                        statuses[flooded.winner].start_time
                    flooded.wasted_executions = len(started) - 1
                    for replica in flooded.replicas:
                        if replica == flooded.winner:
                            continue
                        if not statuses[replica].is_terminal:
                            if statuses[replica].state not in (J.ACTIVE,):
                                flooded.cancelled_queued += 1
                            self.agent.cancel(replica)
                    self.sim.trace.log("flood", "winner",
                                       logical=flooded.logical_id,
                                       winner=flooded.winner)
                elif all(s.is_terminal for s in statuses.values()):
                    # every replica failed before starting
                    flooded.state = "FAILED"
                    flooded.end_time = self.sim.now
                    return
            else:
                winner = statuses[flooded.winner]
                if winner.is_terminal:
                    flooded.state = "DONE" if winner.is_complete \
                        else "FAILED"
                    flooded.end_time = winner.end_time
                    self.sim.trace.log("flood", "finished",
                                       logical=flooded.logical_id,
                                       state=flooded.state)
                    return
