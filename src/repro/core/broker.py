"""Resource discovery and scheduling strategies (paper §4.4).

Three strategies, in increasing sophistication, exactly as the paper
lays them out:

* :class:`UserListBroker` -- "a user-supplied list of GRAM servers...
  a good starting point": round-robin over a static list.
* :class:`MDSBroker` -- "a personal resource broker that combines
  information about user authorization, application requirements and
  resource status (obtained from MDS)": queries the GIIS, filters with a
  ClassAd Requirements expression, ranks candidates (e.g. by expected
  wait or allocation cost), optionally double-checks the chosen site's
  live queue before committing.
* :class:`QueueAwareBroker` -- the flooding/tuning flavour: polls every
  candidate's gatekeeper for live queue depth and picks the emptiest,
  which is the "monitor queuing times to tune where to submit subsequent
  jobs" idea in its simplest form.

All `pick()` methods are generators (they may consult remote services).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..classads import ClassAd, EvalContext, is_true, parse
from ..mds.giis import grip_query
from ..sim.errors import RPCError
from ..sim.hosts import Host
from ..sim.rpc import call

if TYPE_CHECKING:  # pragma: no cover
    from .job import GridJob


class Broker:
    """Interface: yield-from `pick(job)` returning a contact or None."""

    def pick(self, job: "GridJob"):  # pragma: no cover - interface
        raise NotImplementedError
        yield


class UserListBroker(Broker):
    """Round-robin over a user-supplied list of gatekeeper contacts."""

    def __init__(self, resources: list[str]):
        if not resources:
            raise ValueError("need at least one resource contact")
        self.resources = list(resources)
        self._next = 0

    def pick(self, job: "GridJob"):
        contact = self.resources[self._next % len(self.resources)]
        self._next += 1
        return contact
        yield  # pragma: no cover - generator protocol


class MDSBroker(Broker):
    """Query MDS, filter by Requirements, take the Rank-best candidate.

    ``requirements`` and ``rank`` are ClassAd expressions evaluated with
    the resource ad as MY (e.g. ``rank="-EstimatedWait - AllocationCost"``
    prefers idle, cheap sites).
    """

    def __init__(
        self,
        host: Host,
        giis_host: str,
        requirements: str = "true",
        rank: str = "-EstimatedWait",
        credential_source=None,
        verify_live: bool = False,
    ):
        self.host = host
        self.sim = host.sim
        self.giis_host = giis_host
        self.requirements = requirements
        self.rank_expr = parse(rank)
        self.credential_source = credential_source
        self.verify_live = verify_live

    def _credential(self, audience: str):
        if self.credential_source is None:
            return None
        return self.credential_source(audience)

    def candidates(self):
        ads = yield from grip_query(
            self.host, self.giis_host, constraint=self.requirements,
            credential=self._credential(self.giis_host))
        return ads

    def pick(self, job: "GridJob"):
        try:
            ads = yield from self.candidates()
        except RPCError:
            return None
        best, best_rank = None, float("-inf")
        for ad in ads:
            value = self.rank_expr.eval(EvalContext(my=ad, now=self.sim.now))
            if isinstance(value, bool):
                value = float(value)
            if not isinstance(value, (int, float)):
                continue
            if value > best_rank:
                best, best_rank = ad, float(value)
        if best is None:
            return None
        contact = best.get("Contact")
        if self.verify_live and contact:
            # "These resources will be queried to determine their current
            # status" -- double-check the MDS picture before submitting.
            try:
                yield from call(self.host, contact, "gatekeeper", "ping",
                                timeout=10.0,
                                credential=self._credential(contact))
            except RPCError:
                return None
        return contact


class MatchmakingBroker(Broker):
    """Bilateral ClassAd matchmaking over MDS resource ads (§4.4).

    The paper: "One promising approach to constructing such a resource
    broker is to use the Condor Matchmaking framework [25] to implement
    the brokering algorithm.  Such an approach is described by Vazhkudai
    et al. [28]... A similar approach could be taken for computational
    resources for use with Condor-G."

    Each grid job is described by a ClassAd (built from its request plus
    user-supplied Requirements/Rank); resource ads come from the GIIS;
    the match is *bilateral* -- a resource ad may carry its own
    Requirements (e.g. refusing jobs above a cpu count), which the
    simpler :class:`MDSBroker` ignores.
    """

    def __init__(
        self,
        host: Host,
        giis_host: str,
        requirements: str = "true",
        rank: str = "-EstimatedWait",
        owner: str = "",
        credential_source=None,
    ):
        self.host = host
        self.sim = host.sim
        self.giis_host = giis_host
        self.requirements = requirements
        self.rank = rank
        self.owner = owner
        self.credential_source = credential_source

    def _credential(self, audience: str):
        if self.credential_source is None:
            return None
        return self.credential_source(audience)

    def job_ad(self, job: "GridJob") -> ClassAd:
        ad = ClassAd()
        ad["Owner"] = self.owner or "user"
        ad["Cpus"] = job.request.cpus
        ad["Runtime"] = job.request.runtime
        ad["JobId"] = job.job_id
        ad.set_expression("Requirements", self.requirements)
        ad.set_expression("Rank", self.rank)
        return ad

    def pick(self, job: "GridJob"):
        from ..classads import best_match

        try:
            ads = yield from grip_query(
                self.host, self.giis_host, constraint="true",
                credential=self._credential(self.giis_host))
        except RPCError:
            return None
        chosen = best_match(self.job_ad(job), ads, now=self.sim.now)
        if chosen is None:
            return None
        return chosen.get("Contact")


class QueueAwareBroker(Broker):
    """Poll each candidate's live queue depth; pick the least loaded."""

    def __init__(self, host: Host, resources: list[str],
                 credential_source=None):
        if not resources:
            raise ValueError("need at least one resource contact")
        self.host = host
        self.resources = list(resources)
        self.credential_source = credential_source

    def _credential(self, audience: str):
        if self.credential_source is None:
            return None
        return self.credential_source(audience)

    def pick(self, job: "GridJob"):
        best, best_score = None, None
        for contact in self.resources:
            try:
                info = yield from call(
                    self.host, contact, "gatekeeper", "queue_info",
                    timeout=10.0, credential=self._credential(contact))
            except RPCError:
                continue
            # Fewer queued cpus per free slot = likely shorter wait.
            free = max(info.get("free_slots", 0), 0)
            queued = info.get("queued_cpus", 0)
            score = (0, -free) if free > 0 else (1, queued)
            if best_score is None or score < best_score:
                best, best_score = contact, score
        return best
