"""The Condor-G Scheduler: the persistent queue of grid jobs.

The Scheduler is the first box of Figure 1: it accepts user submissions,
stores every job (and each job's protocol progress) in the submit
machine's stable storage, spawns one GridManager per user with queued
grid jobs, and is the point where holds/releases and completion
notifications happen.  After a submit-machine crash,
:func:`recover_scheduler` rebuilds the queue from disk and the recovered
GridManager reconnects to (or safely resubmits) every job -- the §4.2
"protect against local failure" story.
"""

from __future__ import annotations

from typing import Optional

from ..sim.hosts import Host
from . import job as J
from .broker import Broker
from .gridmanager import GridManager
from .job import GridJob, next_grid_job_id
from .userlog import Notifier, UserLog

QUEUE_NS = "condorg-queue"


class CondorGScheduler:
    """Per-user persistent job queue + GridManager lifecycle."""

    def __init__(
        self,
        host: Host,
        user: str,
        broker: Optional[Broker] = None,
        credential_source=None,
        notifier: Optional[Notifier] = None,
        userlog: Optional[UserLog] = None,
        recover: bool = True,
    ):
        self.host = host
        self.sim = host.sim
        self.user = user
        self.broker = broker
        self.credential_source = credential_source
        self.notifier = notifier or Notifier()
        self.userlog = userlog or UserLog()
        self.jobs: dict[str, GridJob] = {}
        self._store = host.stable.namespace(f"{QUEUE_NS}:{user}")
        self.gridmanager: Optional[GridManager] = None
        if recover:
            self._recover_queue()

    # -- persistence ----------------------------------------------------------
    def persist(self, job: GridJob) -> None:
        self._store.put(job.job_id, job.queue_record())
        self.sim.metrics.gauge("scheduler.queue_depth").set(
            sum(1 for j in self.jobs.values() if not j.is_terminal))

    def _recover_queue(self) -> None:
        for _key, record in self._store.items():
            job = GridJob.from_record(record)
            self.jobs[job.job_id] = job
        live = [j for j in self.jobs.values() if not j.is_terminal]
        if live:
            self.sim.trace.log("scheduler", "recovered", user=self.user,
                               jobs=len(live))
            self._ensure_gridmanager()

    # -- submission ------------------------------------------------------------
    def submit(self, request, resource: str = "",
               job_id: str = "") -> str:
        job = GridJob(job_id=job_id or next_grid_job_id(),
                      request=request, resource=resource)
        job.submit_time = self.sim.now
        self.jobs[job.job_id] = job
        self.persist(job)
        self.sim.metrics.counter("scheduler.jobs_queued").inc()
        self.log(job, "queued", resource=resource or "(broker)")
        self._ensure_gridmanager()
        if self.gridmanager is not None:
            self.gridmanager.kick()
        return job.job_id

    def _ensure_gridmanager(self) -> None:
        if self.gridmanager is None or self.gridmanager.exited:
            self.gridmanager = GridManager(
                self, self.user, self.host,
                credential_source=self.credential_source)

    def gridmanager_exited(self, user: str) -> None:
        self.gridmanager = None

    # -- queries ------------------------------------------------------------
    def jobs_for_user(self, user: str) -> list[GridJob]:
        return sorted(self.jobs.values(), key=lambda j: j.job_id)

    def status(self, job_id: str) -> GridJob:
        return self.jobs[job_id]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for job in self.jobs.values():
            out[job.state] = out.get(job.state, 0) + 1
        return out

    def all_terminal(self) -> bool:
        return all(j.is_terminal for j in self.jobs.values())

    # -- broker ---------------------------------------------------------------
    def pick_resource(self, job: GridJob):
        if self.broker is None:
            return None
        result = yield from self.broker.pick(job)
        return result

    # -- cancellation -----------------------------------------------------------
    def cancel(self, job_id: str):
        """Generator: cancel a job locally and remotely."""
        job = self.jobs.get(job_id)
        if job is None or job.is_terminal:
            return False
        if job.committed and job.jmid and self.gridmanager is not None:
            try:
                yield from self.gridmanager.client.cancel(job.contact,
                                                          job.jmid)
            except Exception:  # noqa: BLE001 - cancel is best effort
                pass
        job.state = J.FAILED
        job.failure_reason = "removed by user"
        job.end_time = self.sim.now
        self.persist(job)
        self.log(job, "removed")
        if self.gridmanager is not None:
            self.gridmanager.kick()
        return True

    # -- holds ---------------------------------------------------------------
    def hold_for_credentials(self, user: str, reason: str) -> int:
        held = 0
        for job in self.jobs.values():
            if job.state in (J.UNSUBMITTED,):
                job.state = J.HELD
                job.hold_reason = reason
                self.persist(job)
                self.log(job, "held", reason=reason)
                held += 1
        return held

    def release_credential_holds(self, user: str) -> int:
        released = 0
        for job in self.jobs.values():
            if job.state == J.HELD:
                # A job held *mid-flight* (credential error discovered by
                # probe/poll) still has a committed remote JobManager that
                # may be running -- or have finished -- the job.  Release
                # it back to PENDING so the GridManager reconnects to the
                # same jmid; resubmitting (UNSUBMITTED) would mint a new
                # sequence number and run the job a second time.
                job.state = J.PENDING if (job.committed and job.jmid) \
                    else J.UNSUBMITTED
                job.hold_reason = ""
                self.persist(job)
                self.log(job, "released")
                released += 1
        if released:
            self._ensure_gridmanager()
            self.gridmanager.kick()
        return released

    def credential_problem(self, job: GridJob, reason: str) -> None:
        """A GRAM operation failed authentication: hold the job."""
        if job.is_terminal:
            return
        self.sim.metrics.counter("scheduler.credential_holds").inc()
        job.state = J.HELD
        job.hold_reason = f"credential problem: {reason}"
        self.persist(job)
        self.log(job, "held", reason=job.hold_reason)
        self.notifier.email(
            self.sim.now, f"{self.user}@example.edu",
            subject="job held: credential problem",
            body=f"{job.job_id}: {reason}")

    # -- completion -----------------------------------------------------------
    def job_finished(self, job: GridJob) -> None:
        event = "terminate" if job.state == J.DONE else "failed"
        self.sim.metrics.counter("scheduler.jobs_finished").inc(label=event)
        self.log(job, event, exit_code=job.exit_code,
                 reason=job.failure_reason)
        self.notifier.fire(job.job_id, event,
                           exit_code=job.exit_code,
                           reason=job.failure_reason)
        if job.state == J.FAILED:
            self.notifier.email(
                self.sim.now, f"{self.user}@example.edu",
                subject=f"job failed: {job.job_id}",
                body=job.failure_reason)

    # -- logging ------------------------------------------------------------
    def log(self, job: GridJob, event: str, **details) -> None:
        job.record_event(self.sim.now, event, **details)
        self.userlog.add(self.sim.now, job.job_id, event, **details)
        self.sim.trace.log("scheduler", event, user=self.user,
                           job=job.job_id, **details)


def install_recovery(host: Host, make_scheduler) -> None:
    """Re-create the scheduler from its on-disk queue at every reboot.

    ``make_scheduler()`` must build a fresh scheduler (with recover=True)
    and re-wire whatever the surrounding agent needs.
    """
    def boot(_host: Host) -> None:
        make_scheduler()

    host.add_boot_action(boot)
