"""The Condor-G Scheduler: the persistent queue of grid jobs.

The Scheduler is the first box of Figure 1: it accepts user submissions,
stores every job (and each job's protocol progress) in the submit
machine's stable storage, spawns one GridManager per user with queued
grid jobs, and is the point where holds/releases and completion
notifications happen.  After a submit-machine crash,
:func:`recover_scheduler` rebuilds the queue from disk and the recovered
GridManager reconnects to (or safely resubmits) every job -- the §4.2
"protect against local failure" story.
"""

from __future__ import annotations

import bisect
from typing import Optional

from ..compat import deprecated
from ..sim.hosts import Host
from ..sim.perf import PerfFlags
from . import job as J
from .broker import Broker
from .gridmanager import GridManager
from .job import GridJob, next_grid_job_id
from .userlog import Notifier, UserLog

QUEUE_NS = "condorg-queue"


class CondorGScheduler:
    """Per-user persistent job queue + GridManager lifecycle."""

    def __init__(
        self,
        host: Host,
        user: str,
        broker: Optional[Broker] = None,
        credential_source=None,
        notifier: Optional[Notifier] = None,
        userlog: Optional[UserLog] = None,
        recover: bool = True,
        max_submitted_per_resource: Optional[int] = None,
        data_services=None,
        grid_monitor: bool = False,
    ):
        self.host = host
        self.sim = host.sim
        self.user = user
        self.broker = broker
        self.credential_source = credential_source
        # Grid Monitor fan-in (§5.1): the GridManager launches one
        # per-site status monitor instead of polling every job (a
        # semantic opt-in -- see AgentSpec.grid_monitor).
        self.grid_monitor = grid_monitor
        # Data-management wiring (repro.data.DataServices) or None; the
        # GridManager stages input datasets / places output datasets
        # through these services when a job declares any.
        self.data_services = data_services
        # Fair-share throttle: cap this user's in-flight jobs
        # (SUBMITTING/PENDING/ACTIVE) per remote resource, so one agent
        # cannot monopolize a gatekeeper in a multi-tenant grid.
        self.max_submitted_per_resource = max_submitted_per_resource
        self.notifier = notifier or Notifier()
        self.userlog = userlog or UserLog()
        self.jobs: dict[str, GridJob] = {}
        # Incremental views of `jobs`, refreshed by _reindex() on every
        # persist() (every state mutation persists, so they can never go
        # stale).  Always maintained -- the upkeep is O(1) -- but only
        # *consulted* when PerfFlags.scheduler_indexes is on, so legacy
        # mode still pays (and measures) the original full-queue scans.
        self._nonterminal: set[str] = set()
        self._unsubmitted: set[str] = set()
        self._watchable: set[str] = set()
        self._by_jmid: dict[str, GridJob] = {}
        self._jmid_of: dict[str, str] = {}
        self._sorted_jobs: list[GridJob] = []    # ascending job_id
        # Throttle bookkeeping: resource contact -> in-flight job count,
        # plus which resource each job is currently counted against.
        self._inflight: dict[str, int] = {}
        self._inflight_res: dict[str, str] = {}
        self._last_depth = 0
        self._store = host.stable.namespace(f"{QUEUE_NS}:{user}")
        self.gridmanager: Optional[GridManager] = None
        if recover:
            self._recover_queue()

    # -- persistence ----------------------------------------------------------
    def persist(self, job: GridJob) -> None:
        self._store.put(job.job_id, job.queue_record())
        self._reindex(job)
        if PerfFlags.scheduler_indexes:
            depth = len(self._nonterminal)
        else:
            depth = sum(1 for j in self.jobs.values() if not j.is_terminal)
        # Applied as a delta so N concurrent per-user schedulers sharing
        # one registry yield a true grid-wide depth instead of whichever
        # agent persisted last clobbering the gauge.
        self.sim.metrics.gauge("scheduler.queue_depth").inc(
            depth - self._last_depth)
        self._last_depth = depth

    def _reindex(self, job: GridJob) -> None:
        jid = job.job_id
        if job.is_terminal:
            self._nonterminal.discard(jid)
        else:
            self._nonterminal.add(jid)
        if job.state == J.UNSUBMITTED:
            self._unsubmitted.add(jid)
        else:
            self._unsubmitted.discard(jid)
        watchable = bool(job.committed and job.jmid
                         and job.state in (J.PENDING, J.ACTIVE))
        if watchable:
            if jid not in self._watchable:
                self._watchable.add(jid)
                if self.gridmanager is not None:
                    self.gridmanager.notify_watchable()
        else:
            self._watchable.discard(jid)
        old_jmid = self._jmid_of.get(jid, "")
        if old_jmid != job.jmid:
            if old_jmid:
                self._by_jmid.pop(old_jmid, None)
            if job.jmid:
                self._by_jmid[job.jmid] = job
            self._jmid_of[jid] = job.jmid
        # In-flight-per-resource tally (the submit throttle's input);
        # maintained unconditionally, like the other indexes, so legacy
        # and perf mode throttle identically.
        res = job.resource if (job.resource and not job.is_terminal
                               and job.state in (J.STAGING, J.SUBMITTING,
                                                 J.PENDING, J.ACTIVE)) \
            else ""
        old_res = self._inflight_res.get(jid, "")
        if old_res != res:
            if old_res:
                left = self._inflight.get(old_res, 0) - 1
                if left > 0:
                    self._inflight[old_res] = left
                else:
                    self._inflight.pop(old_res, None)
            if res:
                self._inflight[res] = self._inflight.get(res, 0) + 1
                self._inflight_res[jid] = res
            else:
                self._inflight_res.pop(jid, None)

    def _add_job(self, job: GridJob) -> None:
        self.jobs[job.job_id] = job
        bisect.insort(self._sorted_jobs, job, key=lambda j: j.job_id)
        self._reindex(job)

    def _recover_queue(self) -> None:
        for _key, record in self._store.items():
            job = GridJob.from_record(record)
            self.jobs[job.job_id] = job
        self._sorted_jobs = sorted(self.jobs.values(),
                                   key=lambda j: j.job_id)
        for job in self.jobs.values():
            self._reindex(job)
        live = [j for j in self.jobs.values() if not j.is_terminal]
        if live:
            self.sim.trace.log("scheduler", "recovered", user=self.user,
                               jobs=len(live))
            self._ensure_gridmanager()

    # -- submission ------------------------------------------------------------
    def submit(self, request, resource: str = "",
               job_id: str = "") -> str:
        job = GridJob(job_id=job_id or next_grid_job_id(),
                      request=request, resource=resource)
        job.submit_time = self.sim.now
        self._add_job(job)
        self.persist(job)
        self.sim.metrics.counter("scheduler.jobs_queued").inc()
        self.sim.metrics.counter("scheduler.user_jobs_queued").inc(
            label=self.user)
        self.log(job, "queued", resource=resource or "(broker)")
        self._ensure_gridmanager()
        if self.gridmanager is not None:
            self.gridmanager.kick()
        return job.job_id

    def _ensure_gridmanager(self) -> None:
        if self.gridmanager is None or self.gridmanager.exited:
            self.gridmanager = GridManager(
                self, self.user, self.host,
                credential_source=self.credential_source,
                max_submitted_per_resource=self.max_submitted_per_resource,
                data_services=self.data_services,
                grid_monitor=self.grid_monitor)

    def _check_user(self, user: Optional[str], method: str) -> None:
        """Deprecation shim for the redundant per-user `user` args.

        The scheduler is bound to exactly one user (`self.user`); in a
        multi-agent grid a mismatched identity means two agents got
        cross-wired, which must fail loudly rather than silently operate
        on the wrong queue.
        """
        if user is None:
            return
        deprecated(
            f"{method}(user=...) is deprecated; the scheduler is bound "
            f"to {self.user!r} and takes its identity from self.user",
            stacklevel=4)
        if user != self.user:
            raise ValueError(
                f"scheduler of {self.user!r} got a {method}() call for "
                f"{user!r}: agents are cross-wired")

    def gridmanager_exited(self, user: Optional[str] = None) -> None:
        self._check_user(user, "gridmanager_exited")
        self.gridmanager = None

    # -- queries ------------------------------------------------------------
    def jobs_for_user(self, user: Optional[str] = None) -> list[GridJob]:
        self._check_user(user, "jobs_for_user")
        if PerfFlags.scheduler_indexes:
            return list(self._sorted_jobs)
        return sorted(self.jobs.values(), key=lambda j: j.job_id)

    def status(self, job_id: str) -> GridJob:
        return self.jobs[job_id]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for job in self.jobs.values():
            out[job.state] = out.get(job.state, 0) + 1
        return out

    def all_terminal(self) -> bool:
        if PerfFlags.scheduler_indexes:
            return not self._nonterminal
        return all(j.is_terminal for j in self.jobs.values())

    # O(1)/O(k) accessors for the GridManager loops (index-backed).
    def job_by_jmid(self, jmid: str) -> Optional[GridJob]:
        return self._by_jmid.get(jmid)

    def watchable_jobs(self) -> list[GridJob]:
        return [self.jobs[jid] for jid in sorted(self._watchable)]

    def watchable_count(self) -> int:
        return len(self._watchable)

    def unsubmitted_count(self) -> int:
        return len(self._unsubmitted)

    def nonterminal_jobs(self) -> list[GridJob]:
        return [self.jobs[jid] for jid in sorted(self._nonterminal)]

    def nonterminal_count(self) -> int:
        return len(self._nonterminal)

    def inflight_on(self, resource: str) -> int:
        """This user's SUBMITTING/PENDING/ACTIVE jobs at `resource`."""
        return self._inflight.get(resource, 0)

    # -- broker ---------------------------------------------------------------
    def pick_resource(self, job: GridJob):
        if self.broker is None:
            return None
        result = yield from self.broker.pick(job)
        return result

    # -- cancellation -----------------------------------------------------------
    def cancel(self, job_id: str):
        """Generator: cancel a job locally and remotely."""
        job = self.jobs.get(job_id)
        if job is None or job.is_terminal:
            return False
        if job.committed and job.jmid and self.gridmanager is not None:
            try:
                yield from self.gridmanager.client.cancel(job.contact,
                                                          job.jmid)
            except Exception:  # noqa: BLE001 - cancel is best effort
                pass
        job.state = J.FAILED
        job.failure_reason = "removed by user"
        job.end_time = self.sim.now
        self.persist(job)
        self.log(job, "removed")
        if self.gridmanager is not None:
            self.gridmanager.kick()
        return True

    # -- holds ---------------------------------------------------------------
    def hold_for_credentials(self, *args, **kwargs) -> int:
        # Modern signature: hold_for_credentials(reason="").  The legacy
        # one was (user, reason); a reason= keyword next to a positional,
        # or two positionals, marks an old caller whose first argument is
        # the (now redundant) user identity.
        reason = ""
        if "reason" in kwargs:
            reason = kwargs.pop("reason")
            if args:
                self._check_user(args[0], "hold_for_credentials")
                args = args[1:]
        elif len(args) >= 2:
            self._check_user(args[0], "hold_for_credentials")
            reason, args = args[1], args[2:]
        elif args:
            reason, args = args[0], args[1:]
        if args or kwargs:
            raise TypeError(
                f"unexpected arguments {list(args) + sorted(kwargs)!r}")
        held = 0
        for job in self.jobs.values():
            if job.state in (J.UNSUBMITTED,):
                job.state = J.HELD
                job.hold_reason = reason
                self.persist(job)
                self.log(job, "held", reason=reason)
                held += 1
        return held

    def release_credential_holds(self, user: Optional[str] = None) -> int:
        self._check_user(user, "release_credential_holds")
        released = 0
        for job in self.jobs.values():
            if job.state == J.HELD:
                # A job held *mid-flight* (credential error discovered by
                # probe/poll) still has a committed remote JobManager that
                # may be running -- or have finished -- the job.  Release
                # it back to PENDING so the GridManager reconnects to the
                # same jmid; resubmitting (UNSUBMITTED) would mint a new
                # sequence number and run the job a second time.
                job.state = J.PENDING if (job.committed and job.jmid) \
                    else J.UNSUBMITTED
                job.hold_reason = ""
                self.persist(job)
                self.log(job, "released")
                released += 1
        if released:
            self._ensure_gridmanager()
            self.gridmanager.kick()
        return released

    def credential_problem(self, job: GridJob, reason: str) -> None:
        """A GRAM operation failed authentication: hold the job."""
        if job.is_terminal:
            return
        self.sim.metrics.counter("scheduler.credential_holds").inc()
        job.state = J.HELD
        job.hold_reason = f"credential problem: {reason}"
        self.persist(job)
        self.log(job, "held", reason=job.hold_reason)
        self.notifier.email(
            self.sim.now, f"{self.user}@example.edu",
            subject="job held: credential problem",
            body=f"{job.job_id}: {reason}")

    # -- completion -----------------------------------------------------------
    def job_finished(self, job: GridJob) -> None:
        event = "terminate" if job.state == J.DONE else "failed"
        self.sim.metrics.counter("scheduler.jobs_finished").inc(label=event)
        self.sim.metrics.counter("scheduler.user_jobs_finished").inc(
            label=self.user)
        self.log(job, event, exit_code=job.exit_code,
                 reason=job.failure_reason)
        self.notifier.fire(job.job_id, event,
                           exit_code=job.exit_code,
                           reason=job.failure_reason)
        if job.state == J.FAILED:
            self.notifier.email(
                self.sim.now, f"{self.user}@example.edu",
                subject=f"job failed: {job.job_id}",
                body=job.failure_reason)

    # -- logging ------------------------------------------------------------
    def log(self, job: GridJob, event: str, **details) -> None:
        job.record_event(self.sim.now, event, **details)
        self.userlog.add(self.sim.now, job.job_id, event, **details)
        self.sim.trace.log("scheduler", event, user=self.user,
                           job=job.job_id, **details)


def install_recovery(host: Host, make_scheduler) -> None:
    """Re-create the scheduler from its on-disk queue at every reboot.

    ``make_scheduler()`` must build a fresh scheduler (with recover=True)
    and re-wire whatever the surrounding agent needs.
    """
    def boot(_host: Host) -> None:
        make_scheduler()

    host.add_boot_action(boot)
