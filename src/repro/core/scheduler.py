"""The Condor-G Scheduler: the persistent queue of grid jobs.

The Scheduler is the first box of Figure 1: it accepts user submissions,
stores every job (and each job's protocol progress) in the submit
machine's stable storage, spawns one GridManager per user with queued
grid jobs, and is the point where holds/releases and completion
notifications happen.  After a submit-machine crash,
:func:`recover_scheduler` rebuilds the queue from disk and the recovered
GridManager reconnects to (or safely resubmits) every job -- the §4.2
"protect against local failure" story.
"""

from __future__ import annotations

import bisect
from typing import Optional

from ..sim.hosts import Host
from ..sim.perf import PerfFlags
from . import job as J
from .broker import Broker
from .gridmanager import GridManager
from .job import GridJob, next_grid_job_id
from .userlog import Notifier, UserLog

QUEUE_NS = "condorg-queue"


class CondorGScheduler:
    """Per-user persistent job queue + GridManager lifecycle."""

    def __init__(
        self,
        host: Host,
        user: str,
        broker: Optional[Broker] = None,
        credential_source=None,
        notifier: Optional[Notifier] = None,
        userlog: Optional[UserLog] = None,
        recover: bool = True,
    ):
        self.host = host
        self.sim = host.sim
        self.user = user
        self.broker = broker
        self.credential_source = credential_source
        self.notifier = notifier or Notifier()
        self.userlog = userlog or UserLog()
        self.jobs: dict[str, GridJob] = {}
        # Incremental views of `jobs`, refreshed by _reindex() on every
        # persist() (every state mutation persists, so they can never go
        # stale).  Always maintained -- the upkeep is O(1) -- but only
        # *consulted* when PerfFlags.scheduler_indexes is on, so legacy
        # mode still pays (and measures) the original full-queue scans.
        self._nonterminal: set[str] = set()
        self._unsubmitted: set[str] = set()
        self._watchable: set[str] = set()
        self._by_jmid: dict[str, GridJob] = {}
        self._jmid_of: dict[str, str] = {}
        self._sorted_jobs: list[GridJob] = []    # ascending job_id
        self._store = host.stable.namespace(f"{QUEUE_NS}:{user}")
        self.gridmanager: Optional[GridManager] = None
        if recover:
            self._recover_queue()

    # -- persistence ----------------------------------------------------------
    def persist(self, job: GridJob) -> None:
        self._store.put(job.job_id, job.queue_record())
        self._reindex(job)
        if PerfFlags.scheduler_indexes:
            depth = len(self._nonterminal)
        else:
            depth = sum(1 for j in self.jobs.values() if not j.is_terminal)
        self.sim.metrics.gauge("scheduler.queue_depth").set(depth)

    def _reindex(self, job: GridJob) -> None:
        jid = job.job_id
        if job.is_terminal:
            self._nonterminal.discard(jid)
        else:
            self._nonterminal.add(jid)
        if job.state == J.UNSUBMITTED:
            self._unsubmitted.add(jid)
        else:
            self._unsubmitted.discard(jid)
        watchable = bool(job.committed and job.jmid
                         and job.state in (J.PENDING, J.ACTIVE))
        if watchable:
            if jid not in self._watchable:
                self._watchable.add(jid)
                if self.gridmanager is not None:
                    self.gridmanager.notify_watchable()
        else:
            self._watchable.discard(jid)
        old_jmid = self._jmid_of.get(jid, "")
        if old_jmid != job.jmid:
            if old_jmid:
                self._by_jmid.pop(old_jmid, None)
            if job.jmid:
                self._by_jmid[job.jmid] = job
            self._jmid_of[jid] = job.jmid

    def _add_job(self, job: GridJob) -> None:
        self.jobs[job.job_id] = job
        bisect.insort(self._sorted_jobs, job, key=lambda j: j.job_id)
        self._reindex(job)

    def _recover_queue(self) -> None:
        for _key, record in self._store.items():
            job = GridJob.from_record(record)
            self.jobs[job.job_id] = job
        self._sorted_jobs = sorted(self.jobs.values(),
                                   key=lambda j: j.job_id)
        for job in self.jobs.values():
            self._reindex(job)
        live = [j for j in self.jobs.values() if not j.is_terminal]
        if live:
            self.sim.trace.log("scheduler", "recovered", user=self.user,
                               jobs=len(live))
            self._ensure_gridmanager()

    # -- submission ------------------------------------------------------------
    def submit(self, request, resource: str = "",
               job_id: str = "") -> str:
        job = GridJob(job_id=job_id or next_grid_job_id(),
                      request=request, resource=resource)
        job.submit_time = self.sim.now
        self._add_job(job)
        self.persist(job)
        self.sim.metrics.counter("scheduler.jobs_queued").inc()
        self.log(job, "queued", resource=resource or "(broker)")
        self._ensure_gridmanager()
        if self.gridmanager is not None:
            self.gridmanager.kick()
        return job.job_id

    def _ensure_gridmanager(self) -> None:
        if self.gridmanager is None or self.gridmanager.exited:
            self.gridmanager = GridManager(
                self, self.user, self.host,
                credential_source=self.credential_source)

    def gridmanager_exited(self, user: str) -> None:
        self.gridmanager = None

    # -- queries ------------------------------------------------------------
    def jobs_for_user(self, user: str) -> list[GridJob]:
        if PerfFlags.scheduler_indexes:
            return list(self._sorted_jobs)
        return sorted(self.jobs.values(), key=lambda j: j.job_id)

    def status(self, job_id: str) -> GridJob:
        return self.jobs[job_id]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for job in self.jobs.values():
            out[job.state] = out.get(job.state, 0) + 1
        return out

    def all_terminal(self) -> bool:
        if PerfFlags.scheduler_indexes:
            return not self._nonterminal
        return all(j.is_terminal for j in self.jobs.values())

    # O(1)/O(k) accessors for the GridManager loops (index-backed).
    def job_by_jmid(self, jmid: str) -> Optional[GridJob]:
        return self._by_jmid.get(jmid)

    def watchable_jobs(self) -> list[GridJob]:
        return [self.jobs[jid] for jid in sorted(self._watchable)]

    def watchable_count(self) -> int:
        return len(self._watchable)

    def unsubmitted_count(self) -> int:
        return len(self._unsubmitted)

    def nonterminal_jobs(self) -> list[GridJob]:
        return [self.jobs[jid] for jid in sorted(self._nonterminal)]

    def nonterminal_count(self) -> int:
        return len(self._nonterminal)

    # -- broker ---------------------------------------------------------------
    def pick_resource(self, job: GridJob):
        if self.broker is None:
            return None
        result = yield from self.broker.pick(job)
        return result

    # -- cancellation -----------------------------------------------------------
    def cancel(self, job_id: str):
        """Generator: cancel a job locally and remotely."""
        job = self.jobs.get(job_id)
        if job is None or job.is_terminal:
            return False
        if job.committed and job.jmid and self.gridmanager is not None:
            try:
                yield from self.gridmanager.client.cancel(job.contact,
                                                          job.jmid)
            except Exception:  # noqa: BLE001 - cancel is best effort
                pass
        job.state = J.FAILED
        job.failure_reason = "removed by user"
        job.end_time = self.sim.now
        self.persist(job)
        self.log(job, "removed")
        if self.gridmanager is not None:
            self.gridmanager.kick()
        return True

    # -- holds ---------------------------------------------------------------
    def hold_for_credentials(self, user: str, reason: str) -> int:
        held = 0
        for job in self.jobs.values():
            if job.state in (J.UNSUBMITTED,):
                job.state = J.HELD
                job.hold_reason = reason
                self.persist(job)
                self.log(job, "held", reason=reason)
                held += 1
        return held

    def release_credential_holds(self, user: str) -> int:
        released = 0
        for job in self.jobs.values():
            if job.state == J.HELD:
                # A job held *mid-flight* (credential error discovered by
                # probe/poll) still has a committed remote JobManager that
                # may be running -- or have finished -- the job.  Release
                # it back to PENDING so the GridManager reconnects to the
                # same jmid; resubmitting (UNSUBMITTED) would mint a new
                # sequence number and run the job a second time.
                job.state = J.PENDING if (job.committed and job.jmid) \
                    else J.UNSUBMITTED
                job.hold_reason = ""
                self.persist(job)
                self.log(job, "released")
                released += 1
        if released:
            self._ensure_gridmanager()
            self.gridmanager.kick()
        return released

    def credential_problem(self, job: GridJob, reason: str) -> None:
        """A GRAM operation failed authentication: hold the job."""
        if job.is_terminal:
            return
        self.sim.metrics.counter("scheduler.credential_holds").inc()
        job.state = J.HELD
        job.hold_reason = f"credential problem: {reason}"
        self.persist(job)
        self.log(job, "held", reason=job.hold_reason)
        self.notifier.email(
            self.sim.now, f"{self.user}@example.edu",
            subject="job held: credential problem",
            body=f"{job.job_id}: {reason}")

    # -- completion -----------------------------------------------------------
    def job_finished(self, job: GridJob) -> None:
        event = "terminate" if job.state == J.DONE else "failed"
        self.sim.metrics.counter("scheduler.jobs_finished").inc(label=event)
        self.log(job, event, exit_code=job.exit_code,
                 reason=job.failure_reason)
        self.notifier.fire(job.job_id, event,
                           exit_code=job.exit_code,
                           reason=job.failure_reason)
        if job.state == J.FAILED:
            self.notifier.email(
                self.sim.now, f"{self.user}@example.edu",
                subject=f"job failed: {job.job_id}",
                body=job.failure_reason)

    # -- logging ------------------------------------------------------------
    def log(self, job: GridJob, event: str, **details) -> None:
        job.record_event(self.sim.now, event, **details)
        self.userlog.add(self.sim.now, job.job_id, event, **details)
        self.sim.trace.log("scheduler", event, user=self.user,
                           job=job.job_id, **details)


def install_recovery(host: Host, make_scheduler) -> None:
    """Re-create the scheduler from its on-disk queue at every reboot.

    ``make_scheduler()`` must build a fresh scheduler (with recover=True)
    and re-wire whatever the surrounding agent needs.
    """
    def boot(_host: Host) -> None:
        make_scheduler()

    host.add_boot_action(boot)
