"""Credential lifetime management (paper §4.3).

The agent "periodically analyzes the credentials for all users with
currently queued jobs"; on (approaching) expiry it holds affected jobs,
e-mails the user, and -- once the proxy is refreshed, by hand or from a
MyProxy server -- releases the holds and re-forwards the fresh proxy to
every remote JobManager.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..gsi.proxy import ProxyCredential
from ..sim.errors import RPCError
from ..sim.hosts import Host
from ..sim.rpc import call

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import CondorGScheduler


class CredentialMonitor:
    """Watches one user's proxy; drives hold/notify/refresh/re-forward."""

    SCAN_INTERVAL = 30.0

    def __init__(
        self,
        scheduler: "CondorGScheduler",
        host: Host,
        user: str,
        proxy: ProxyCredential,
        email: str = "",
        warn_threshold: float = 3600.0,
        myproxy: Optional[dict] = None,    # {host, username, passphrase,
                                           #  lifetime}
    ):
        self.scheduler = scheduler
        self.host = host
        self.sim = host.sim
        self.user = user
        self.proxy = proxy
        self.email = email or f"{user}@example.edu"
        self.warn_threshold = warn_threshold
        self.myproxy = myproxy
        self._warned = False
        self.refresh_count = 0
        host.spawn(self._scan_loop(), name=f"credmon:{user}")

    # -- the credential the rest of the agent uses -------------------------------
    def credential_source(self, audience: str):
        """Fresh signing proof from the current proxy (None if expired)."""
        if self.proxy.expired(self.sim.now):
            return None
        return self.proxy.signing_proof(self.sim.now, audience=audience)

    def time_left(self) -> float:
        return self.proxy.time_left(self.sim.now)

    @property
    def expired(self) -> bool:
        return self.proxy.expired(self.sim.now)

    # -- user-facing refresh (grid-proxy-init) -----------------------------------
    def refresh(self, proxy: ProxyCredential) -> None:
        """The user ran the 'simple tool' to create a fresh proxy."""
        self.proxy = proxy
        self.refresh_count += 1
        self._warned = False
        self.sim.trace.log("credmon", "refreshed", user=self.user,
                           expires=proxy.not_after)
        self.host.spawn(self._after_refresh(), name=f"reforward:{self.user}")

    # -- scanning -----------------------------------------------------------
    def _scan_loop(self):
        while True:
            yield self.sim.timeout(self.SCAN_INTERVAL)
            remaining = self.time_left()
            if remaining <= 0:
                yield from self._handle_expired()
            elif remaining < self.warn_threshold and not self._warned:
                self._warned = True
                self.scheduler.notifier.email(
                    self.sim.now, self.email,
                    subject="credential expiry warning",
                    body=f"proxy expires in {remaining:.0f}s; refresh soon")
                self.sim.trace.log("credmon", "warn", user=self.user,
                                   remaining=remaining)

    def _handle_expired(self):
        held = self.scheduler.hold_for_credentials(
            "proxy credential expired")
        if held:
            self.scheduler.notifier.email(
                self.sim.now, self.email,
                subject="jobs held: credential expired",
                body=f"{held} job(s) cannot run again until you refresh "
                     f"your credentials (grid-proxy-init or MyProxy)")
        if self.myproxy is not None:
            yield from self._myproxy_refresh()

    def _myproxy_refresh(self):
        cfg = self.myproxy
        try:
            fresh = yield from call(
                self.host, cfg["host"], "myproxy", "get",
                username=cfg["username"], passphrase=cfg["passphrase"],
                lifetime=cfg.get("lifetime"))
        except RPCError as exc:
            self.sim.trace.log("credmon", "myproxy_failed", user=self.user,
                               error=str(exc))
            return
        self.proxy = fresh
        self.refresh_count += 1
        self._warned = False
        self.sim.trace.log("credmon", "myproxy_refreshed", user=self.user,
                           expires=fresh.not_after)
        yield from self._reforward_and_release()

    def _after_refresh(self):
        yield from self._reforward_and_release()

    def _reforward_and_release(self):
        """Re-forward the fresh proxy to all remote JobManagers (§4.3)."""
        for job in self.scheduler.jobs_for_user():
            if job.committed and job.jmid and not job.is_terminal:
                try:
                    yield from call(
                        self.host, job.contact, f"jm:{job.jmid}",
                        "refresh_credential",
                        credential=self.credential_source(job.contact))
                    self.sim.trace.log("credmon", "reforwarded",
                                       job=job.job_id)
                except RPCError:
                    pass
        self.scheduler.release_credential_holds()
