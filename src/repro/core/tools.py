"""Command-line-tool look and feel (paper §4.1).

"The Condor-G agent allows the user to treat the Grid as an entirely
local resource, with an API and command line tools" -- these are those
tools: text renderings of agent state in the spirit of ``condor_q``,
``condor_history``, and ``condor_status``, suitable for printing from a
portal or an interactive session.
"""

from __future__ import annotations

from typing import Optional

from .api import CondorGAgent

_STATE_CODE = {
    "UNSUBMITTED": "U", "SUBMITTING": "S", "PENDING": "P", "ACTIVE": "R",
    "DONE": "C", "FAILED": "X", "HELD": "H",
    "IDLE": "I", "MATCHED": "M", "RUNNING": "R", "COMPLETED": "C",
    "REMOVED": "X",
}


def _fmt_time(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:10.1f}"


def _render(headers: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    for row in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def condor_q(agent: CondorGAgent, include_done: bool = False) -> str:
    """The queue view: every non-terminal job of this agent."""
    headers = ["ID", "ST", "UNIVERSE", "RESOURCE", "SUBMITTED",
               "RUN_TIME", "DETAIL"]
    rows = []
    now = agent.sim.now
    entries = [agent.status(j) for j in agent.scheduler.jobs]
    if agent.schedd is not None:
        entries += [agent.status(j) for j in agent.schedd.jobs]
    shown = 0
    for status in sorted(entries, key=lambda s: s.submit_time):
        if status.is_terminal and not include_done:
            continue
        shown += 1
        run_time = 0.0
        if status.start_time is not None:
            run_time = (status.end_time or now) - status.start_time
        detail = status.hold_reason or status.failure_reason or ""
        rows.append([
            status.job_id,
            _STATE_CODE.get(status.state, "?"),
            status.universe,
            status.resource or "(unmatched)",
            _fmt_time(status.submit_time),
            _fmt_time(run_time),
            detail[:40],
        ])
    counts: dict[str, int] = {}
    for status in entries:
        counts[status.state] = counts.get(status.state, 0) + 1
    summary = "; ".join(f"{v} {k.lower()}"
                        for k, v in sorted(counts.items()))
    return _render(headers, rows) + f"\n\n{shown} jobs shown; {summary}"


def condor_history(agent: CondorGAgent) -> str:
    """Terminal jobs with outcomes, most recent last."""
    headers = ["ID", "ST", "RESOURCE", "STARTED", "ENDED", "EXIT",
               "ATTEMPTS"]
    rows = []
    entries = [agent.status(j) for j in agent.scheduler.jobs]
    if agent.schedd is not None:
        entries += [agent.status(j) for j in agent.schedd.jobs]
    for status in sorted(entries, key=lambda s: s.end_time or 0.0):
        if not status.is_terminal:
            continue
        rows.append([
            status.job_id,
            _STATE_CODE.get(status.state, "?"),
            status.resource or "-",
            _fmt_time(status.start_time),
            _fmt_time(status.end_time),
            "-" if status.exit_code is None else str(status.exit_code),
            str(status.attempts),
        ])
    return _render(headers, rows)


def condor_status(agent: CondorGAgent) -> str:
    """The personal pool's slots (glideins and any other startds)."""
    if agent.collector is None:
        return "(agent has no personal pool)"
    headers = ["NAME", "SITE", "ARCH", "STATE", "GLIDEIN"]
    rows = []
    for ad in agent.collector.live_ads("startd"):
        rows.append([
            str(ad.get("Name")),
            str(ad.get("Site", "")),
            str(ad.get("Arch", "")),
            str(ad.get("State", "")),
            "yes" if ad.get("GlideIn") is True else "no",
        ])
    total = len(rows)
    unclaimed = sum(1 for r in rows if r[3] == "Unclaimed")
    return _render(headers, rows) + \
        f"\n\n{total} slots; {unclaimed} unclaimed"
