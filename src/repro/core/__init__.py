"""Condor-G core: the computation management agent (paper §4-§5)."""

from .api import CondorGAgent, JobDescription, JobStatus
from .broker import (
    Broker,
    MatchmakingBroker,
    MDSBroker,
    QueueAwareBroker,
    UserListBroker,
)
from .flood import FloodedJob, FloodingSubmitter
from .credmon import CredentialMonitor
from .gcat import assemble_chunks, gcat_wrap
from .glidein import GlideInManager, GlideInSpec
from .gridmanager import GridManager
from .job import (
    ACTIVE,
    DONE,
    FAILED,
    GridJob,
    HELD,
    PENDING,
    SUBMITTING,
    UNSUBMITTED,
    next_grid_job_id,
)
from .scheduler import CondorGScheduler
from .submitfile import SubmitFileError, parse_submit_file, \
    submit_from_file
from .tools import condor_history, condor_q, condor_status
from .userlog import Email, LogEvent, Notifier, UserLog

__all__ = [
    "ACTIVE", "Broker", "CondorGAgent", "CondorGScheduler",
    "CredentialMonitor", "DONE", "Email", "FAILED", "GlideInManager",
    "FloodedJob", "FloodingSubmitter", "GlideInSpec", "GridJob",
    "GridManager", "HELD", "JobDescription", "MatchmakingBroker",
    "JobStatus", "LogEvent", "MDSBroker", "Notifier", "PENDING",
    "QueueAwareBroker", "SUBMITTING", "UNSUBMITTED", "UserListBroker",
    "SubmitFileError", "UserLog", "assemble_chunks", "condor_history",
    "condor_q", "condor_status", "gcat_wrap", "next_grid_job_id",
    "parse_submit_file", "submit_from_file",
]
