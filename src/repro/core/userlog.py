"""The user job log and the notification channel (paper §4.1).

Users can "obtain access to detailed logs, providing a complete history
of their jobs' execution" and "be informed of job termination or
problems, via callbacks or asynchronous mechanisms such as e-mail".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class LogEvent:
    time: float
    job_id: str
    event: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:12.3f}] {self.job_id:<14} {self.event:<12} {kv}"


class UserLog:
    """Append-only per-agent event log, queryable per job."""

    def __init__(self) -> None:
        self.events: list[LogEvent] = []

    def add(self, time: float, job_id: str, event: str,
            **details: Any) -> None:
        self.events.append(LogEvent(time, job_id, event, details))

    def for_job(self, job_id: str) -> list[LogEvent]:
        return [e for e in self.events if e.job_id == job_id]

    def dump(self, job_id: Optional[str] = None) -> str:
        events = self.events if job_id is None else self.for_job(job_id)
        return "\n".join(str(e) for e in events)


@dataclass(frozen=True)
class Email:
    time: float
    to: str
    subject: str
    body: str


class Notifier:
    """Simulated e-mail plus synchronous callbacks."""

    def __init__(self) -> None:
        self.inbox: list[Email] = []
        self.callbacks: list[Callable[[str, str, dict], None]] = []

    def email(self, time: float, to: str, subject: str,
              body: str = "") -> None:
        self.inbox.append(Email(time, to, subject, body))

    def subscribe(self, fn: Callable[[str, str, dict], None]) -> None:
        """fn(job_id, event, details) on every job transition."""
        self.callbacks.append(fn)

    def fire(self, job_id: str, event: str, **details: Any) -> None:
        for fn in self.callbacks:
            fn(job_id, event, details)

    def emails_about(self, fragment: str) -> list[Email]:
        return [m for m in self.inbox if fragment in m.subject]
