"""The GridManager daemon (paper §4.2, Figure 1).

One GridManager per user, created by the Scheduler when grid-universe
jobs enter the queue, terminating when none remain.  It owns the whole
remote lifecycle:

* **submission** via the two-phase GRAM protocol, persisting the sequence
  token before phase 1 and the JobManager contact before phase 2, so a
  submit-machine crash at *any* point resumes without duplicating or
  losing the job;
* **failure detection** by probing JobManagers, with the exact §4.2
  decision tree: JobManager silent -> probe the Gatekeeper; Gatekeeper
  answers -> restart the JobManager; Gatekeeper silent -> crash and
  partition are indistinguishable, so keep probing until contact returns,
  then restart/reconnect (the revived JobManager either resumes watching
  or reports that the job finished during the outage);
* **resubmission** of jobs that failed for transient, non-application
  reasons;
* **status callbacks** (a sink service) backed up by periodic polling.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..gram.client import Gram2Client, GramClientError
from ..sim.errors import (
    AuthenticationError,
    AuthorizationError,
    RPCError,
    RPCTimeout,
)
from ..sim.hosts import Host
from ..sim.perf import PerfFlags
from ..sim.rpc import Service, call
from . import job as J
from .job import GridJob

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import CondorGScheduler

# Failure reasons worth resubmitting (infrastructure, not the app).
_TRANSIENT_PREFIXES = (
    "stage-in failed",
    "local scheduler submission failed",
    "commit window expired",
    "jobmanager crashed",
    "lost contact",
    "gatekeeper busy",
)


def _is_transient(reason: str) -> bool:
    return any(reason.startswith(p) for p in _TRANSIENT_PREFIXES)


class GridManager(Service):
    """Callback sink + the per-user submission/probing machinery."""

    PROBE_INTERVAL = 30.0
    POLL_INTERVAL = 20.0
    # With a Grid Monitor reporting per site (§5.1), per-job polling is
    # demoted to this slow backstop and skips sites with fresh reports.
    MONITOR_BACKSTOP_INTERVAL = 300.0
    # A site's heartbeat is stale once this many report intervals pass
    # in silence: per-job polling/probing resumes and the monitor is
    # relaunched (with a cooldown so a dead gatekeeper isn't hammered).
    MONITOR_MISS_FACTOR = 2.5
    MONITOR_START_COOLDOWN = 60.0

    def __init__(
        self,
        scheduler: "CondorGScheduler",
        user: str,
        host: Host,
        credential_source=None,
        max_submitted_per_resource: Optional[int] = None,
        data_services=None,
        grid_monitor: bool = False,
    ):
        self.callback_service = f"gramcb:{user}"
        super().__init__(host, name=self.callback_service)
        self.scheduler = scheduler
        self.user = user
        # Client-side fair-share throttle (§5: a user's unthrottled
        # submissions once overloaded a gatekeeper): never keep more
        # than this many of our jobs in flight per remote resource.
        self.max_submitted_per_resource = max_submitted_per_resource
        # repro.data wiring (replica catalog + transfer scheduler + the
        # site -> storage-element map), or None in data-free grids.
        self.data = data_services
        # Grid Monitor fan-in (§5.1, repro.gram.monitor): one per-site
        # daemon batches all our JobManagers' states into one report
        # per interval.  Semantic opt-in -- it changes the RPC pattern
        # (and so the digest), which is why it rides AgentSpec and not
        # PerfFlags.
        self.grid_monitor = grid_monitor
        self._monitor_last: dict[str, float] = {}     # contact -> last report
        self._monitor_attempt: dict[str, float] = {}  # contact -> last launch
        self._monitor_suspect: set[str] = set()       # jmids absent from report
        self._credential_source = credential_source
        self.client = Gram2Client(host, credential_source=credential_source)
        self.exited = False
        self._wake = self.sim.event(name=f"gm-wake:{user}")
        self._watch_wakes: list = []   # poll/probe loops asleep while idle
        self._procs = [
            host.spawn(self._submit_loop(), name=f"gridmanager:{user}"),
            host.spawn(self._probe_loop(), name=f"gm-probe:{user}"),
            host.spawn(self._poll_loop(), name=f"gm-poll:{user}"),
        ]
        self.sim.trace.log("gridmanager", "start", user=user)

    # -- plumbing -----------------------------------------------------------
    def _trace(self, event: str, **details) -> None:
        self.sim.trace.log("gridmanager", event, user=self.user, **details)

    def kick(self) -> None:
        if not self._wake.triggered and not self._wake._scheduled:
            self._wake.succeed(None)

    def notify_watchable(self) -> None:
        """A job just became watchable: rouse idle poll/probe loops."""
        wakes, self._watch_wakes = self._watch_wakes, []
        for ev in wakes:
            if not ev.triggered and not ev._scheduled:
                ev.succeed(None)

    def _jobs(self) -> list[GridJob]:
        return self.scheduler.jobs_for_user()

    def _submit_candidates(self) -> list[GridJob]:
        if PerfFlags.scheduler_indexes:
            # Snapshot of the nonterminal jobs: any job the legacy
            # full-queue scan could find UNSUBMITTED at visit time is
            # nonterminal at pass start (terminal states are absorbing),
            # so filtering at visit time over this snapshot submits
            # exactly the same jobs in the same (job_id) order.
            return self.scheduler.nonterminal_jobs()
        return self._jobs()

    # -- submission ------------------------------------------------------------
    def _submit_loop(self):
        while not self.exited:
            for job in self._submit_candidates():
                if job.state == J.UNSUBMITTED and \
                        self.sim.now >= job.backoff_until:
                    yield from self._submit_one(job)
            if self._check_all_done():
                return
            self._wake = self.sim.event(name=f"gm-wake:{self.user}")
            if PerfFlags.idle_poll_sleep and \
                    self.scheduler.unsubmitted_count() == 0:
                # No UNSUBMITTED jobs at all: every transition into
                # UNSUBMITTED (submit/resubmit/release) kicks the wake
                # event, so a pure wait cannot miss work.  The interval
                # tick only exists to notice backoff_until expiring,
                # and backoff implies an UNSUBMITTED job.
                yield self._wake
            else:
                yield self.sim.any_of(
                    [self._wake, self.sim.timeout(self.POLL_INTERVAL)])

    def _submit_one(self, job: GridJob):
        if not job.resource:
            resource = yield from self.scheduler.pick_resource(job)
            if resource is None:
                return     # broker has no candidate yet; retry next pass
            job.resource = resource
        limit = self.max_submitted_per_resource
        if limit is not None and \
                self.scheduler.inflight_on(job.resource) >= limit:
            # Fair-share throttle: this resource already carries our
            # quota of in-flight jobs.  Leave the job UNSUBMITTED (the
            # next pass retries; completions kick the wake event) and,
            # when a broker owns placement, release the pick so it may
            # route the job to a less-loaded site next time.
            self.sim.metrics.counter("gridmanager.submit_throttled").inc(
                label=job.resource)
            if self.scheduler.broker is not None:
                job.resource = ""
            return
        if job.request.input_datasets and self.data is not None:
            ok = yield from self._stage_inputs_for(job)
            if not ok:
                return
        attempt_start = self.sim.now
        job.state = J.SUBMITTING
        job.attempts += 1
        job.seq = f"{job.job_id}/{job.attempts}"
        job.submit_time = job.submit_time or self.sim.now
        self.scheduler.persist(job)
        self.scheduler.log(job, "submit", resource=job.resource,
                           attempt=job.attempts)
        try:
            response = yield from self.client.submit_phase1(
                job.resource, job.request, seq=job.seq,
                callback=(self.host.name, self.callback_service))
        except (GramClientError, RPCError) as exc:
            if "JobManager limit" in str(exc):
                # Gatekeeper at capacity: congestion, not failure --
                # back off without consuming a retry attempt.
                job.attempts -= 1
                job.state = J.UNSUBMITTED
                job.backoff_until = self.sim.now + 60.0
                self.scheduler.persist(job)
                self._trace("gatekeeper_busy_backoff", job=job.job_id,
                            until=job.backoff_until)
                return
            self._submission_failed(job, exc, phase="phase1")
            return
        if job.state != J.SUBMITTING:
            # Superseded while phase 1 was in flight: a stale failure
            # report for an earlier attempt reclaimed the job (it is
            # UNSUBMITTED again, or terminal).  Walk away -- the
            # JobManager we just created is uncommitted, so it times
            # out and cleans up site-side; committing it here would
            # pin the job to an attempt the scheduler has disowned.
            self._trace("submit_superseded", job=job.job_id, seq=job.seq)
            return
        job.jmid = response["jmid"]
        job.contact = response["contact"]
        self.scheduler.persist(job)
        try:
            yield from self.client.commit(job.contact, job.jmid)
        except (AuthenticationError, AuthorizationError) as exc:
            self.scheduler.credential_problem(job, str(exc))
            return
        except (GramClientError, RPCError) as exc:
            # A lost commit *ACK* is indistinguishable from a lost
            # commit: the JobManager may have received phase 2 and
            # already be running the job, so resubmitting here would
            # break exactly-once.  Park the job under the §4.2 probe
            # machinery instead -- a restarted JobManager resumes from
            # its state file (or reports the job finished), and one
            # with no state file never ran anything, which *is* safe
            # to resubmit (the probe path does exactly that).
            self.sim.metrics.counter("gridmanager.submit_failures").inc(
                label="commit")
            job.committed = True
            job.state = J.PENDING
            self.scheduler.persist(job)
            self._trace("commit_unacknowledged", job=job.job_id,
                        jmid=job.jmid, reason=str(exc))
            return
        job.committed = True
        job.state = J.PENDING
        self.scheduler.persist(job)
        self.sim.metrics.counter("gridmanager.submits").inc()
        self.sim.metrics.histogram("gridmanager.submit_latency").observe(
            self.sim.now - attempt_start)
        self._trace("submitted", job=job.job_id, jmid=job.jmid,
                    resource=job.resource)
        self._ensure_monitor(job.contact)

    # -- data placement (repro.data) -----------------------------------------
    def _data_credential(self, audience: str):
        if self._credential_source is None:
            return None
        return self._credential_source(audience)

    def _stage_inputs_for(self, job: GridJob):
        """Place the job's input datasets at its site's SE.  True = go on
        to GRAM submission; False = the job left the submission path
        (failed staging and was resubmitted/failed, or was superseded).
        """
        job.state = J.STAGING
        self.scheduler.persist(job)
        self.scheduler.log(job, "stage_in", resource=job.resource,
                           datasets=len(job.request.input_datasets))
        started = self.sim.now
        try:
            staged = yield from self._stage_inputs(job)
        except (RPCError, RuntimeError) as exc:
            # Same transient treatment as a remote stage-in failure,
            # plus a breather so a dead SE/catalog is not hammered.
            job.attempts += 1
            job.backoff_until = self.sim.now + 30.0
            self._remote_failure(job, f"stage-in failed: {exc}")
            return False
        if job.state != J.STAGING:
            return False    # cancelled/held while transfers ran
        self.sim.metrics.histogram("gridmanager.stage_in_time").observe(
            self.sim.now - started)
        if staged:
            self.sim.metrics.counter("gridmanager.stage_in_bytes").inc(
                staged, label=job.resource)
        self._trace("staged_in", job=job.job_id, resource=job.resource,
                    moved=staged)
        return True

    def _stage_inputs(self, job: GridJob):
        """Move each missing input dataset to the site's SE; returns the
        bytes actually transferred (0 = everything was already local)."""
        from ..data.catalog import dataset_path

        data = self.data
        se = data.storage_element(job.resource)
        if not se:
            raise RuntimeError(f"no storage element at {job.resource}")
        moved = 0
        for name in job.request.input_datasets:
            entry = yield from call(
                self.host, data.catalog_host, "rls", "lookup",
                timeout=30.0,
                credential=self._data_credential(data.catalog_host),
                name=name)
            replicas = entry["replicas"]
            if se in replicas:
                self.sim.metrics.counter("gridmanager.stage_in_hits").inc(
                    label=se)
                continue
            if not replicas:
                raise RuntimeError(f"dataset {name!r} has no replicas")
            src_se = sorted(replicas)[0]
            result = yield from call(
                self.host, data.dts_host, "dts", "transfer",
                timeout=14_400.0,
                credential=self._data_credential(data.dts_host),
                src_url=replicas[src_se], dst_host=se,
                dst_path=dataset_path(name), dataset=name,
                expected_checksum=entry["checksum"])
            moved += result["size"]
        return moved

    def _stage_out_datasets(self, job: GridJob):
        """Archive the finished job's output datasets at its site's SE.

        Runs as its own process after the remote DONE: the job sits in
        STAGING_OUT (non-terminal, so the GridManager stays alive and
        ``run_until_quiet`` waits) until every output is verified at the
        SE and registered in the catalog.  Placement retries forever
        with capped backoff -- the payload already ran to completion, so
        resubmitting would break exactly-once; durable placement is the
        only way forward.
        """
        from ..data.catalog import dataset_path
        from ..gass.files import file_digest

        data = self.data
        se = data.storage_element(job.resource)
        if not se:
            # Misconfiguration (dataset job matched to an SE-less site):
            # don't deadlock the queue -- finish the job and let the
            # durable_outputs invariant flag the missing archive.
            self._trace("stage_out_no_se", job=job.job_id,
                        resource=job.resource)
            job.state = J.DONE
            job.end_time = self.sim.now
            self.scheduler.persist(job)
            self.scheduler.job_finished(job)
            self.kick()
            return
        for name, size in job.request.output_datasets:
            size = int(size)
            path = dataset_path(name)
            expected = file_digest(path, size, "")
            backoff = 10.0
            while not job.is_terminal:
                try:
                    yield from call(
                        self.host, se, "gridftp", "stor", timeout=3600.0,
                        credential=self._data_credential(se),
                        path=path, size=size)
                    actual = yield from call(
                        self.host, se, "gridftp", "checksum", timeout=60.0,
                        credential=self._data_credential(se), path=path)
                    if actual != expected:
                        self.sim.metrics.counter(
                            "gridmanager.stage_out_corrupt").inc(label=se)
                        self._trace("stage_out_corrupt", job=job.job_id,
                                    dataset=name, se=se)
                        yield from call(
                            self.host, se, "gridftp", "delete",
                            timeout=60.0,
                            credential=self._data_credential(se),
                            path=path)
                        raise RPCError("stage-out checksum mismatch")
                    yield from call(
                        self.host, data.catalog_host, "rls", "register",
                        timeout=60.0,
                        credential=self._data_credential(
                            data.catalog_host),
                        name=name, se_host=se, size=size,
                        checksum=expected)
                    self.sim.metrics.counter(
                        "gridmanager.stage_out_bytes").inc(size, label=se)
                    break
                except RPCError:
                    yield self.sim.timeout(backoff)
                    backoff = min(backoff * 2.0, 120.0)
        if job.is_terminal:
            return    # removed by the user while we were placing outputs
        job.state = J.DONE
        job.end_time = self.sim.now
        self.scheduler.persist(job)
        self._trace("staged_out", job=job.job_id, resource=job.resource,
                    datasets=len(job.request.output_datasets))
        self.scheduler.job_finished(job)
        self.kick()

    def _submission_failed(self, job: GridJob, exc: Exception,
                           phase: str = "phase1") -> None:
        if isinstance(exc, (AuthenticationError, AuthorizationError)):
            self.scheduler.credential_problem(job, str(exc))
            return
        self.sim.metrics.counter("gridmanager.submit_failures").inc(
            label=phase)
        # Keep the real reason (e.g. "commit of jm-3 failed after 8
        # attempts"): a generic "local scheduler submission failed" prefix
        # would mask the cause in the userlog and make the transient
        # classification depend on the mask instead of the failure.  Any
        # failure of the submission exchange itself is infrastructure,
        # never the application, so it is transient by construction.
        self._remote_failure(job, str(exc), transient=True)

    # -- callbacks ------------------------------------------------------------
    def handle_gram_callback(self, ctx, jmid: str, state: str,
                             failure_reason: str = "",
                             exit_code: Optional[int] = None) -> bool:
        job = self._job_by_jmid(jmid)
        if job is None:
            return False
        self._apply_remote_state(job, state, failure_reason, exit_code)
        return True

    def handle_monitor_report(self, ctx, site: str, seq: int,
                              reports: dict) -> bool:
        """One batched status report from a site's Grid Monitor.

        Each entry goes through the same `_apply_remote_state` as a
        callback or poll response, under the same superseded-``jmid``
        staleness discipline: a report snapshotted before a resubmission
        must not touch the new attempt.  The report doubles as the
        site's liveness heartbeat, and a *watchable* job whose
        JobManager is absent from its site's report is marked suspect --
        the probe loop gives exactly those jobs the per-job §4.2
        treatment while everything covered by the monitor stays quiet.
        """
        if not self.grid_monitor or self.exited:
            return False
        contact = ctx.caller_host
        self._monitor_last[contact] = self.sim.now
        self.sim.metrics.counter("gridmanager.monitor_reports").inc(
            label=site)
        self.sim.metrics.counter("gridmanager.monitor_jobs_reported").inc(
            len(reports))
        for jmid in sorted(reports):
            # The jmid index is maintained unconditionally (its upkeep
            # is O(1)); consulting it here is not a PerfFlags matter
            # because monitored runs have their own digest lineage.
            job = self.scheduler.job_by_jmid(jmid)
            if job is None or job.jmid != jmid:
                continue    # superseded attempt: drop the stale entry
            entry = reports[jmid]
            self._apply_remote_state(
                job, entry["state"], entry.get("failure_reason", ""),
                entry.get("exit_code"))
        for job in self._watchable_jobs():
            if (job.contact or job.resource) != contact or not job.jmid:
                continue
            if job.jmid in reports:
                self._monitor_suspect.discard(job.jmid)
            elif job.jmid not in self._monitor_suspect:
                # Still watchable but invisible to the site's monitor:
                # its JobManager died (monitors see every live *and*
                # unacked-terminal JobManager of ours).
                self._monitor_suspect.add(job.jmid)
                self.sim.metrics.counter(
                    "gridmanager.monitor_suspects").inc()
                self._trace("monitor_missing_jm", job=job.job_id,
                            jmid=job.jmid, contact=contact)
        return True

    # -- grid monitor lifecycle ---------------------------------------------
    def _monitor_fresh(self, contact: str) -> bool:
        """Has `contact`'s monitor reported (or been launched) recently?"""
        last = self._monitor_last.get(contact)
        if last is None:
            return False
        from ..gram.monitor import GridMonitor

        horizon = GridMonitor.REPORT_INTERVAL * self.MONITOR_MISS_FACTOR
        return self.sim.now - last <= horizon

    def _ensure_monitor(self, contact: str) -> None:
        """Launch (or relaunch) the Grid Monitor at `contact`, lazily.

        Called on every successful submit and on every stale-heartbeat
        probe pass; the freshness check and launch cooldown make both
        O(1) no-ops while a monitor is alive, so the steady state costs
        one ``start_monitor`` RPC per site per outage, not per job.
        """
        if not self.grid_monitor or self.exited or not contact:
            return
        if self._monitor_fresh(contact):
            return
        last = self._monitor_attempt.get(contact)
        if last is not None and \
                self.sim.now - last < self.MONITOR_START_COOLDOWN:
            return
        self._monitor_attempt[contact] = self.sim.now
        self.host.spawn(self._start_monitor(contact),
                        name=f"gm-monitor:{self.user}")

    def _start_monitor(self, contact: str):
        starts = self.sim.metrics.counter("gridmanager.monitor_starts")
        try:
            yield from self.client.start_monitor(
                contact, callback=(self.host.name, self.callback_service))
        except RPCError as exc:
            starts.inc(label="failed")
            self._trace("monitor_start_failed", contact=contact,
                        reason=str(exc))
            return
        # Optimistic heartbeat: the monitor exists *now*; its first
        # report lands one interval out, well inside the staleness
        # horizon -- so the probe loop stands down immediately instead
        # of fanning out per-job probes while the monitor warms up.
        self._monitor_last[contact] = self.sim.now
        starts.inc(label="ok")
        self._trace("monitor_started", contact=contact)

    def _job_by_jmid(self, jmid: str) -> Optional[GridJob]:
        if PerfFlags.scheduler_indexes:
            return self.scheduler.job_by_jmid(jmid)
        for job in self._jobs():
            if job.jmid == jmid:
                return job
        return None

    def _apply_remote_state(self, job: GridJob, state: str,
                            failure_reason: str,
                            exit_code: Optional[int]) -> None:
        if job.is_terminal:
            return
        if job.state == J.STAGING_OUT:
            # The remote side already reported DONE; the stage-out
            # process owns the rest of the lifecycle.  A stale poll
            # response must not regress the state machine.
            return
        if state == "PENDING" and job.state != J.PENDING:
            job.state = J.PENDING
            self.scheduler.persist(job)
        elif state == "ACTIVE" and job.state != J.ACTIVE:
            job.state = J.ACTIVE
            job.start_time = self.sim.now
            self.scheduler.persist(job)
            self.scheduler.log(job, "execute", resource=job.resource)
        elif state == "DONE":
            job.exit_code = exit_code if exit_code is not None else 0
            if job.request.output_datasets and self.data is not None:
                # Archive declared outputs at the site's storage element
                # before the job is allowed to go terminal.
                job.state = J.STAGING_OUT
                self.scheduler.persist(job)
                self.scheduler.log(job, "stage_out", resource=job.resource,
                                   datasets=len(job.request.output_datasets))
                self.host.spawn(self._stage_out_datasets(job),
                                name=f"stageout:{job.job_id}")
                return
            job.state = J.DONE
            job.end_time = self.sim.now
            self.scheduler.persist(job)
            self.scheduler.job_finished(job)
            self.kick()
        elif state == "FAILED":
            self._remote_failure(job, failure_reason)

    def _remote_failure(self, job: GridJob, reason: str,
                        transient: Optional[bool] = None) -> None:
        if job.is_terminal:
            return
        self.scheduler.log(job, "remote_failure", reason=reason,
                           attempt=job.attempts)
        if transient is None:
            transient = _is_transient(reason)
        if transient and job.attempts < job.max_attempts:
            # Resubmit: new logical attempt, broker may pick a new site.
            job.state = J.UNSUBMITTED
            job.jmid = ""
            job.contact = ""
            job.committed = False
            if self.scheduler.broker is not None:
                job.resource = ""
            self.scheduler.persist(job)
            self.sim.metrics.counter("gridmanager.resubmits").inc()
            self._trace("resubmit", job=job.job_id, reason=reason)
            self.kick()
        else:
            job.state = J.FAILED
            job.end_time = self.sim.now
            job.failure_reason = reason
            self.scheduler.persist(job)
            self.scheduler.job_finished(job)
            self.kick()

    # -- idle skipping -------------------------------------------------------
    def _has_watchable(self) -> bool:
        if PerfFlags.scheduler_indexes:
            return self.scheduler.watchable_count() > 0
        return bool(self._watchable_jobs())

    def _idle_realign(self, interval: float):
        """Generator: sleep while nothing is watchable, then re-tick.

        The legacy poll/probe loops tick every `interval` even with
        nothing to watch; an idle pass is invisible (no trace, no RPC,
        no metrics), so skipping it preserves the digest *provided* the
        next real pass lands on the same tick.  Tick times accumulate
        as repeated ``t += interval`` float additions from the last
        tick, so we replay exactly that accumulation and then sleep to
        the absolute result (timeout_until: no drift through a relative
        delay).
        """
        last_tick = self.sim.now
        wake = self.sim.event(name=f"gm-watch:{self.user}")
        self._watch_wakes.append(wake)
        yield wake
        tick = last_tick
        while tick <= self.sim.now:
            tick += interval
        yield self.sim.timeout_until(tick)

    # -- polling backstop ----------------------------------------------------
    def _poll_loop(self):
        # With a Grid Monitor fanning in per-site reports, per-job
        # status polling is pure redundancy while heartbeats are fresh:
        # the loop drops to a slow backstop tick and skips every job at
        # a freshly-reporting site, so it only pays RPCs for sites whose
        # monitor has gone quiet (and for report loss, eventually).
        interval = self.MONITOR_BACKSTOP_INTERVAL if self.grid_monitor \
            else self.POLL_INTERVAL
        while not self.exited:
            yield self.sim.timeout(interval)
            while PerfFlags.idle_poll_sleep and not self._has_watchable():
                yield from self._idle_realign(interval)
            for job in self._watchable_jobs():
                if self.grid_monitor and \
                        self._monitor_fresh(job.contact or job.resource):
                    continue
                yield from self._poll_job(job)

    def _poll_job(self, job: GridJob):
        # Snapshot the attempt we are polling: the job can be
        # resubmitted while the status RPC is in flight (a
        # failure report for THIS attempt races with the next
        # one), and applying a stale response to the new
        # attempt would wreck its state machine.
        jmid = job.jmid
        if not jmid or job.is_terminal:
            return    # mutated since the list was drawn
        self.sim.metrics.counter("gridmanager.status_polls").inc()
        try:
            status = yield from self.client.status(job.contact, jmid)
        except AuthenticationError as exc:
            # An expired/bad proxy discovered while polling gets
            # the same §5 hold-and-notify treatment as one
            # discovered while probing.  Both the metric and the
            # hold are gated on the attempt match: a stale error
            # for a superseded attempt says nothing about the
            # current attempt's credential.
            if job.jmid == jmid:
                self.sim.metrics.counter(
                    "gridmanager.poll_credential_errors").inc()
                self.scheduler.credential_problem(job, str(exc))
            return
        except RPCError:
            return    # probe loop owns liveness handling
        if job.jmid != jmid:
            return    # superseded attempt: drop the response
        self._apply_remote_state(
            job, status["state"], status.get("failure_reason", ""),
            status.get("exit_code"))

    def _watchable_jobs(self) -> list[GridJob]:
        if PerfFlags.scheduler_indexes:
            return self.scheduler.watchable_jobs()
        return [job for job in self._jobs()
                if job.committed and job.jmid and not job.is_terminal
                and job.state in (J.PENDING, J.ACTIVE)]

    # -- failure detection (§4.2 decision tree) ----------------------------------
    def _probe_loop(self):
        while not self.exited:
            yield self.sim.timeout(self.PROBE_INTERVAL)
            while PerfFlags.idle_poll_sleep and not self._has_watchable():
                yield from self._idle_realign(self.PROBE_INTERVAL)
            for job in self._watchable_jobs():
                if self.grid_monitor:
                    jmid = job.jmid
                    contact = job.contact or job.resource
                    if self._monitor_fresh(contact):
                        # Liveness piggybacks on the heartbeat: probe
                        # per-job only what the monitor reported missing.
                        if jmid and jmid in self._monitor_suspect:
                            self._monitor_suspect.discard(jmid)
                            yield from self._probe_job(job)
                        continue
                    # Stale heartbeat: the monitor (or the whole site)
                    # is gone.  Degrade to the full per-job §4.2
                    # machinery for this site and ask for a new monitor.
                    self._ensure_monitor(contact)
                yield from self._probe_job(job)

    def _probe_job(self, job: GridJob):
        outcomes = self.sim.metrics.counter("gridmanager.probe_outcomes")
        # Same staleness discipline as the poll loop: every yield below
        # can interleave with a resubmission, after which this probe is
        # about a dead attempt and must not touch the job.
        jmid = job.jmid
        if not jmid or job.is_terminal:
            return    # mutated since the probe round's list was drawn
        try:
            yield from self.client.probe_jobmanager(job.contact, jmid)
            outcomes.inc(label="alive")
            return    # alive
        except RPCTimeout:
            pass
        except AuthenticationError as exc:
            outcomes.inc(label="credential")
            if job.jmid == jmid:
                self.scheduler.credential_problem(job, str(exc))
            return
        except RPCError:
            pass
        if job.jmid != jmid:
            return
        outcomes.inc(label="silent")
        self._trace("jobmanager_silent", job=job.job_id, jmid=job.jmid)
        try:
            yield from self.client.ping_gatekeeper(job.contact)
        except (RPCError, AuthenticationError):
            # Machine crash or network failure: indistinguishable (§4.2).
            # Keep the job and retry on the next probe round.
            outcomes.inc(label="unreachable")
            self._trace("resource_unreachable", job=job.job_id,
                        contact=job.contact)
            return
        if job.jmid != jmid:
            return
        # Gatekeeper is alive: only the JobManager died.  Restart it.
        yield from self._restart_jobmanager(job)

    def _restart_jobmanager(self, job: GridJob):
        outcomes = self.sim.metrics.counter("gridmanager.probe_outcomes")
        jmid = job.jmid
        try:
            yield from self.client.restart_jobmanager(job.contact, jmid)
            outcomes.inc(label="restarted")
            self._trace("jobmanager_restarted", job=job.job_id,
                        jmid=job.jmid)
        except RPCTimeout:
            return    # lost it again; next probe round retries
        except RPCError as exc:
            # No state file: the JobManager never survived to persist.
            outcomes.inc(label="restart_failed")
            if job.jmid == jmid:
                self._remote_failure(job, f"jobmanager crashed: {exc}")
            return
        # Point the revived JobManager's streaming at our GASS server.
        if job.request.stdout_url:
            try:
                yield from self.client.update_env(
                    job.contact, job.jmid, "GASS_URL",
                    job.request.stdout_url)
            except RPCError:
                pass

    # -- exit ---------------------------------------------------------------
    def _check_all_done(self) -> bool:
        if PerfFlags.scheduler_indexes:
            if not self.scheduler.jobs or self.scheduler.nonterminal_count():
                return False
            n_jobs = len(self.scheduler.jobs)
        else:
            jobs = self._jobs()
            if not jobs or not all(job.is_terminal for job in jobs):
                return False
            n_jobs = len(jobs)
        self.exited = True
        self._trace("exit", jobs=n_jobs)
        self.shutdown()
        for proc in self._procs:
            if proc.alive:
                proc.kill(cause="gridmanager exit")
        self.scheduler.gridmanager_exited()
        return True
