"""The GridManager daemon (paper §4.2, Figure 1).

One GridManager per user, created by the Scheduler when grid-universe
jobs enter the queue, terminating when none remain.  It owns the whole
remote lifecycle:

* **submission** via the two-phase GRAM protocol, persisting the sequence
  token before phase 1 and the JobManager contact before phase 2, so a
  submit-machine crash at *any* point resumes without duplicating or
  losing the job;
* **failure detection** by probing JobManagers, with the exact §4.2
  decision tree: JobManager silent -> probe the Gatekeeper; Gatekeeper
  answers -> restart the JobManager; Gatekeeper silent -> crash and
  partition are indistinguishable, so keep probing until contact returns,
  then restart/reconnect (the revived JobManager either resumes watching
  or reports that the job finished during the outage);
* **resubmission** of jobs that failed for transient, non-application
  reasons;
* **status callbacks** (a sink service) backed up by periodic polling.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..gram.client import Gram2Client, GramClientError
from ..sim.errors import (
    AuthenticationError,
    AuthorizationError,
    RPCError,
    RPCTimeout,
)
from ..sim.hosts import Host
from ..sim.rpc import Service
from . import job as J
from .job import GridJob

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import CondorGScheduler

# Failure reasons worth resubmitting (infrastructure, not the app).
_TRANSIENT_PREFIXES = (
    "stage-in failed",
    "local scheduler submission failed",
    "commit window expired",
    "jobmanager crashed",
    "lost contact",
    "gatekeeper busy",
)


def _is_transient(reason: str) -> bool:
    return any(reason.startswith(p) for p in _TRANSIENT_PREFIXES)


class GridManager(Service):
    """Callback sink + the per-user submission/probing machinery."""

    PROBE_INTERVAL = 30.0
    POLL_INTERVAL = 20.0

    def __init__(
        self,
        scheduler: "CondorGScheduler",
        user: str,
        host: Host,
        credential_source=None,
    ):
        self.callback_service = f"gramcb:{user}"
        super().__init__(host, name=self.callback_service)
        self.scheduler = scheduler
        self.user = user
        self.client = Gram2Client(host, credential_source=credential_source)
        self.exited = False
        self._wake = self.sim.event(name=f"gm-wake:{user}")
        self._procs = [
            host.spawn(self._submit_loop(), name=f"gridmanager:{user}"),
            host.spawn(self._probe_loop(), name=f"gm-probe:{user}"),
            host.spawn(self._poll_loop(), name=f"gm-poll:{user}"),
        ]
        self.sim.trace.log("gridmanager", "start", user=user)

    # -- plumbing -----------------------------------------------------------
    def _trace(self, event: str, **details) -> None:
        self.sim.trace.log("gridmanager", event, user=self.user, **details)

    def kick(self) -> None:
        if not self._wake.triggered and not self._wake._scheduled:
            self._wake.succeed(None)

    def _jobs(self) -> list[GridJob]:
        return self.scheduler.jobs_for_user(self.user)

    # -- submission ------------------------------------------------------------
    def _submit_loop(self):
        while not self.exited:
            for job in self._jobs():
                if job.state == J.UNSUBMITTED and \
                        self.sim.now >= job.backoff_until:
                    yield from self._submit_one(job)
            if self._check_all_done():
                return
            self._wake = self.sim.event(name=f"gm-wake:{self.user}")
            index, _ = yield self.sim.any_of(
                [self._wake, self.sim.timeout(self.POLL_INTERVAL)])

    def _submit_one(self, job: GridJob):
        if not job.resource:
            resource = yield from self.scheduler.pick_resource(job)
            if resource is None:
                return     # broker has no candidate yet; retry next pass
            job.resource = resource
        attempt_start = self.sim.now
        job.state = J.SUBMITTING
        job.attempts += 1
        job.seq = f"{job.job_id}/{job.attempts}"
        job.submit_time = job.submit_time or self.sim.now
        self.scheduler.persist(job)
        self.scheduler.log(job, "submit", resource=job.resource,
                           attempt=job.attempts)
        try:
            response = yield from self.client.submit_phase1(
                job.resource, job.request, seq=job.seq,
                callback=(self.host.name, self.callback_service))
        except (GramClientError, RPCError) as exc:
            if "JobManager limit" in str(exc):
                # Gatekeeper at capacity: congestion, not failure --
                # back off without consuming a retry attempt.
                job.attempts -= 1
                job.state = J.UNSUBMITTED
                job.backoff_until = self.sim.now + 60.0
                self.scheduler.persist(job)
                self._trace("gatekeeper_busy_backoff", job=job.job_id,
                            until=job.backoff_until)
                return
            self._submission_failed(job, exc, phase="phase1")
            return
        job.jmid = response["jmid"]
        job.contact = response["contact"]
        self.scheduler.persist(job)
        try:
            yield from self.client.commit(job.contact, job.jmid)
        except (AuthenticationError, AuthorizationError) as exc:
            self.scheduler.credential_problem(job, str(exc))
            return
        except (GramClientError, RPCError) as exc:
            # A lost commit *ACK* is indistinguishable from a lost
            # commit: the JobManager may have received phase 2 and
            # already be running the job, so resubmitting here would
            # break exactly-once.  Park the job under the §4.2 probe
            # machinery instead -- a restarted JobManager resumes from
            # its state file (or reports the job finished), and one
            # with no state file never ran anything, which *is* safe
            # to resubmit (the probe path does exactly that).
            self.sim.metrics.counter("gridmanager.submit_failures").inc(
                label="commit")
            job.committed = True
            job.state = J.PENDING
            self.scheduler.persist(job)
            self._trace("commit_unacknowledged", job=job.job_id,
                        jmid=job.jmid, reason=str(exc))
            return
        job.committed = True
        job.state = J.PENDING
        self.scheduler.persist(job)
        self.sim.metrics.counter("gridmanager.submits").inc()
        self.sim.metrics.histogram("gridmanager.submit_latency").observe(
            self.sim.now - attempt_start)
        self._trace("submitted", job=job.job_id, jmid=job.jmid,
                    resource=job.resource)

    def _submission_failed(self, job: GridJob, exc: Exception,
                           phase: str = "phase1") -> None:
        if isinstance(exc, (AuthenticationError, AuthorizationError)):
            self.scheduler.credential_problem(job, str(exc))
            return
        self.sim.metrics.counter("gridmanager.submit_failures").inc(
            label=phase)
        # Keep the real reason (e.g. "commit of jm-3 failed after 8
        # attempts"): a generic "local scheduler submission failed" prefix
        # would mask the cause in the userlog and make the transient
        # classification depend on the mask instead of the failure.  Any
        # failure of the submission exchange itself is infrastructure,
        # never the application, so it is transient by construction.
        self._remote_failure(job, str(exc), transient=True)

    # -- callbacks ------------------------------------------------------------
    def handle_gram_callback(self, ctx, jmid: str, state: str,
                             failure_reason: str = "",
                             exit_code: Optional[int] = None) -> bool:
        job = self._job_by_jmid(jmid)
        if job is None:
            return False
        self._apply_remote_state(job, state, failure_reason, exit_code)
        return True

    def _job_by_jmid(self, jmid: str) -> Optional[GridJob]:
        for job in self._jobs():
            if job.jmid == jmid:
                return job
        return None

    def _apply_remote_state(self, job: GridJob, state: str,
                            failure_reason: str,
                            exit_code: Optional[int]) -> None:
        if job.is_terminal:
            return
        if state == "PENDING" and job.state != J.PENDING:
            job.state = J.PENDING
            self.scheduler.persist(job)
        elif state == "ACTIVE" and job.state != J.ACTIVE:
            job.state = J.ACTIVE
            job.start_time = self.sim.now
            self.scheduler.persist(job)
            self.scheduler.log(job, "execute", resource=job.resource)
        elif state == "DONE":
            job.state = J.DONE
            job.end_time = self.sim.now
            job.exit_code = exit_code if exit_code is not None else 0
            self.scheduler.persist(job)
            self.scheduler.job_finished(job)
            self.kick()
        elif state == "FAILED":
            self._remote_failure(job, failure_reason)

    def _remote_failure(self, job: GridJob, reason: str,
                        transient: Optional[bool] = None) -> None:
        if job.is_terminal:
            return
        self.scheduler.log(job, "remote_failure", reason=reason,
                           attempt=job.attempts)
        if transient is None:
            transient = _is_transient(reason)
        if transient and job.attempts < job.max_attempts:
            # Resubmit: new logical attempt, broker may pick a new site.
            job.state = J.UNSUBMITTED
            job.jmid = ""
            job.contact = ""
            job.committed = False
            if self.scheduler.broker is not None:
                job.resource = ""
            self.scheduler.persist(job)
            self.sim.metrics.counter("gridmanager.resubmits").inc()
            self._trace("resubmit", job=job.job_id, reason=reason)
            self.kick()
        else:
            job.state = J.FAILED
            job.end_time = self.sim.now
            job.failure_reason = reason
            self.scheduler.persist(job)
            self.scheduler.job_finished(job)
            self.kick()

    # -- polling backstop ----------------------------------------------------
    def _poll_loop(self):
        while not self.exited:
            yield self.sim.timeout(self.POLL_INTERVAL)
            for job in self._watchable_jobs():
                try:
                    status = yield from self.client.status(job.contact,
                                                           job.jmid)
                except AuthenticationError as exc:
                    # An expired/bad proxy discovered while polling gets
                    # the same §5 hold-and-notify treatment as one
                    # discovered while probing.
                    self.sim.metrics.counter(
                        "gridmanager.poll_credential_errors").inc()
                    self.scheduler.credential_problem(job, str(exc))
                    continue
                except RPCError:
                    continue    # probe loop owns liveness handling
                self._apply_remote_state(
                    job, status["state"], status.get("failure_reason", ""),
                    status.get("exit_code"))

    def _watchable_jobs(self) -> list[GridJob]:
        return [job for job in self._jobs()
                if job.committed and job.jmid and not job.is_terminal
                and job.state in (J.PENDING, J.ACTIVE)]

    # -- failure detection (§4.2 decision tree) ----------------------------------
    def _probe_loop(self):
        while not self.exited:
            yield self.sim.timeout(self.PROBE_INTERVAL)
            for job in self._watchable_jobs():
                yield from self._probe_job(job)

    def _probe_job(self, job: GridJob):
        outcomes = self.sim.metrics.counter("gridmanager.probe_outcomes")
        try:
            yield from self.client.probe_jobmanager(job.contact, job.jmid)
            outcomes.inc(label="alive")
            return    # alive
        except RPCTimeout:
            pass
        except AuthenticationError as exc:
            outcomes.inc(label="credential")
            self.scheduler.credential_problem(job, str(exc))
            return
        except RPCError:
            pass
        outcomes.inc(label="silent")
        self._trace("jobmanager_silent", job=job.job_id, jmid=job.jmid)
        try:
            yield from self.client.ping_gatekeeper(job.contact)
        except (RPCError, AuthenticationError):
            # Machine crash or network failure: indistinguishable (§4.2).
            # Keep the job and retry on the next probe round.
            outcomes.inc(label="unreachable")
            self._trace("resource_unreachable", job=job.job_id,
                        contact=job.contact)
            return
        # Gatekeeper is alive: only the JobManager died.  Restart it.
        yield from self._restart_jobmanager(job)

    def _restart_jobmanager(self, job: GridJob):
        outcomes = self.sim.metrics.counter("gridmanager.probe_outcomes")
        try:
            yield from self.client.restart_jobmanager(job.contact, job.jmid)
            outcomes.inc(label="restarted")
            self._trace("jobmanager_restarted", job=job.job_id,
                        jmid=job.jmid)
        except RPCTimeout:
            return    # lost it again; next probe round retries
        except RPCError as exc:
            # No state file: the JobManager never survived to persist.
            outcomes.inc(label="restart_failed")
            self._remote_failure(job, f"jobmanager crashed: {exc}")
            return
        # Point the revived JobManager's streaming at our GASS server.
        if job.request.stdout_url:
            try:
                yield from self.client.update_env(
                    job.contact, job.jmid, "GASS_URL",
                    job.request.stdout_url)
            except RPCError:
                pass

    # -- exit ---------------------------------------------------------------
    def _check_all_done(self) -> bool:
        jobs = self._jobs()
        if jobs and all(job.is_terminal for job in jobs):
            self.exited = True
            self._trace("exit", jobs=len(jobs))
            self.shutdown()
            for proc in self._procs:
                if proc.alive:
                    proc.kill(cause="gridmanager exit")
            self.scheduler.gridmanager_exited(self.user)
            return True
        return False
