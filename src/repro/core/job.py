"""Grid job records held by the Condor-G agent.

State machine (paper §4.2)::

    UNSUBMITTED -> SUBMITTING -> PENDING -> ACTIVE -> DONE
         |  \\          |            |         |
         |   \\         v            v         v
         |    HELD   FAILED       FAILED    FAILED
         |     ^
         +-----+   (credential expiry holds; refresh releases)

Everything needed to survive a submit-machine crash is in
``queue_record()``: notably the GRAM *sequence number* (so a recovered
GridManager retries the same logical submission instead of creating a
new one) and the JobManager contact (so it reconnects instead of
resubmitting).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..gram.protocol import GramJobRequest
from ..states import JobState

# Module-level aliases: the enum members compare and serialize exactly
# like the string literals they replace (see repro.states).
UNSUBMITTED = JobState.UNSUBMITTED
STAGING = JobState.STAGING
SUBMITTING = JobState.SUBMITTING
PENDING = JobState.PENDING
ACTIVE = JobState.ACTIVE
STAGING_OUT = JobState.STAGING_OUT
DONE = JobState.DONE
FAILED = JobState.FAILED
HELD = JobState.HELD

TERMINAL = frozenset({DONE, FAILED})

_ids = itertools.count(1)


def next_grid_job_id() -> str:
    return f"gridjob-{next(_ids)}"


def reset_grid_job_ids() -> None:
    """Restart job numbering (testbed isolation helper)."""
    global _ids
    _ids = itertools.count(1)


@dataclass
class GridJob:
    """One entry in the agent's persistent queue."""

    job_id: str
    request: GramJobRequest
    resource: str = ""            # gatekeeper contact ("" = broker decides)
    state: str = UNSUBMITTED
    seq: Optional[int] = None     # GRAM sequence number (persisted!)
    jmid: str = ""
    contact: str = ""
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    exit_code: Optional[int] = None
    failure_reason: str = ""
    hold_reason: str = ""
    attempts: int = 0             # resubmissions after remote failures
    max_attempts: int = 5
    backoff_until: float = 0.0    # congestion backoff (gatekeeper busy)
    committed: bool = False       # two-phase commit completed
    history: list = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        return self.state == DONE

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL

    def record_event(self, now: float, event: str, **details: Any) -> None:
        self.history.append((now, event, details))

    # -- persistence ----------------------------------------------------------
    def queue_record(self) -> dict:
        request = self.request
        if request.program is not None:
            # Callables do not survive a crash; the resubmitting layer
            # (e.g. the GlideIn manager) owns re-creating such jobs.
            request = replace(request, program=None)
        return {
            "job_id": self.job_id,
            "request": request,
            "resource": self.resource,
            "state": self.state,
            "seq": self.seq,
            "jmid": self.jmid,
            "contact": self.contact,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "exit_code": self.exit_code,
            "failure_reason": self.failure_reason,
            "hold_reason": self.hold_reason,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "backoff_until": self.backoff_until,
            "committed": self.committed,
            "history": list(self.history),
        }

    @classmethod
    def from_record(cls, record: dict) -> "GridJob":
        job = cls(**record)
        if job.state == SUBMITTING:
            # We crashed mid-protocol.  If the commit had gone through we
            # reconnect via jmid; otherwise the same seq is retried and
            # the uncommitted remote JobManager (if any) aborts itself.
            job.state = PENDING if job.committed else UNSUBMITTED
        elif job.state == STAGING:
            # Input staging is idempotent (replicas already placed are
            # found in the catalog and skipped), so just start over.
            job.state = UNSUBMITTED
        elif job.state == STAGING_OUT:
            # The remote run finished; reconnecting via jmid re-reports
            # DONE and re-runs the (idempotent) output placement.
            job.state = PENDING if (job.committed and job.jmid) \
                else UNSUBMITTED
        return job
