"""G-Cat: chunked live output shipping for the GridGaussian portal (§6).

Users of the portal had two requirements: output reliably stored at the
Mass Storage System (MSS) when the job completes, and the ability to view
output *as it is produced*.  G-Cat "monitors the output file and sends
updates to MSS as partial file chunks", buffering in local scratch so
network slowness never stalls the application ("hides network
performance variations from Gaussian").

Implementation: :func:`gcat_wrap` wraps a job body.  The body writes its
output normally (site-local scratch via ``ctx.write_output``); a monitor
coroutine tails the scratch file and ships each new span to the MSS
GridFTP server as ``<base>.chunk<N>``, retrying on failures.  The final
chunk is flushed after the body exits, then a ``<base>.manifest`` with
the chunk count is stored -- completeness is checkable.  The user-side
:func:`assemble_chunks` fetches and concatenates whatever chunks exist
so far, which is exactly the "view the output as it is received" script
from the paper.
"""

from __future__ import annotations

from ..gridftp.client import gridftp_get, gridftp_put
from ..sim.errors import RPCError


def gcat_wrap(
    body,
    mss_url_base: str,
    poll_interval: float = 15.0,
    credential_source=None,
):
    """Wrap a job-body program with a G-Cat output monitor.

    ``body(ctx)`` is an ordinary LRM job program writing output through
    ``ctx.write_output``.  ``mss_url_base`` is a ``gsiftp://`` URL prefix
    for the chunks.
    """

    def wrapped(ctx):
        state = {"sent": 0, "chunks": 0, "done": False}

        def credential():
            if credential_source is None:
                return None
            from ..gridftp.server import parse_gsiftp_url
            host, _ = parse_gsiftp_url(mss_url_base)
            return credential_source(host)

        def ship_new(final=False):
            # Generator: push any unshipped scratch bytes as one chunk.
            text = ctx.lrm.read_output(ctx.job.local_id, state["sent"])
            if not text and not final:
                return
            if text:
                url = f"{mss_url_base}.chunk{state['chunks']}"
                try:
                    yield from gridftp_put(ctx.host, url, data=text,
                                           credential=credential(),
                                           timeout=30.0)
                except RPCError:
                    if final:
                        raise  # the completion flush must not skip bytes
                    return     # MSS unreachable: keep buffering locally
                state["sent"] += len(text)
                state["chunks"] += 1
                ctx.sim.trace.log("gcat", "chunk_shipped", url=url,
                                  size=len(text))

        def monitor():
            while not state["done"]:
                yield ctx.sim.timeout(poll_interval)
                yield from ship_new()

        mon = ctx.host.spawn(monitor(), name="gcat-monitor")
        try:
            code = yield from body(ctx)
        finally:
            state["done"] = True
            if mon.alive:
                mon.kill(cause="gcat body finished")
        # Final flush + manifest: "output reliably stored at MSS when the
        # job completes".  Retry a few times before giving up.
        for _ in range(5):
            try:
                yield from ship_new(final=True)
                yield from gridftp_put(
                    ctx.host, f"{mss_url_base}.manifest",
                    data=str(state["chunks"]), credential=credential(),
                    timeout=30.0)
                break
            except RPCError:
                yield ctx.sim.timeout(poll_interval)
        return code if isinstance(code, int) else 0

    return wrapped


def assemble_chunks(host, mss_url_base: str, credential=None):
    """Fetch and concatenate the chunks currently at the MSS.

    Returns ``(text, complete)`` where ``complete`` is True once the
    manifest exists and all chunks it names were fetched.
    """
    parts: list[str] = []
    n = 0
    while True:
        try:
            got = yield from gridftp_get(host, f"{mss_url_base}.chunk{n}",
                                         credential=credential)
        except RPCError:
            break
        parts.append(got["data"])
        n += 1
    complete = False
    try:
        manifest = yield from gridftp_get(host, f"{mss_url_base}.manifest",
                                          credential=credential)
        complete = int(manifest["data"]) == n
    except RPCError:
        pass
    return "".join(parts), complete
