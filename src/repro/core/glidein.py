"""The GlideIn mechanism (paper §5, Figure 2).

``GlideInManager.glide_in(site, n)`` submits *GRAM jobs whose payload is
a Condor startd*: the bootstrap program first fetches the Condor
binaries from a central GridFTP repository ("hence avoiding a need for
individual users to store binaries for all potential architectures"),
then runs a startd that advertises itself to the *agent's personal
Collector*.  From that moment the remote slot is an ordinary pool member:
the agent's Negotiator matches locally queued jobs onto it, Shadows
serve their syscalls, and checkpointing/migration work unchanged.

Delayed binding falls out of the design: the user's job is matched to a
slot only when the remote LRM has actually started the glidein, so a job
can never be stuck in one site's queue while another site has a free CPU
(§5: "minimizes queuing delays by preventing a job from waiting at one
remote resource while another resource capable of serving the job is
available").

Daemons shut down when idle for ``idle_timeout`` ("guarding against
runaway daemons") or when the allocation's walltime expires, in which
case the Shadow lease machinery reschedules anything they were running.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from ..condor.startd import Startd, machine_ad
from ..gram.protocol import GramJobRequest
from ..gridftp.client import gridftp_get
from ..sim.errors import RPCError

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import CondorGScheduler


@dataclass
class GlideInSpec:
    """Configuration of one batch of glideins."""

    site: str                      # gatekeeper contact
    count: int = 1
    walltime: float = 3600.0       # allocation length at the remote site
    idle_timeout: float = 600.0    # self-shutdown after this much idleness
    cpus_per_glidein: int = 1
    binaries_url: str = ""         # GridFTP URL of the condor executables
    arch: str = "INTEL"
    mips: int = 100
    #: how often each glidein startd re-advertises to the collector;
    #: large fleets raise this to bound collector traffic
    advertise_interval: float = 15.0


class GlideInManager:
    """Submits and tracks glideins through the agent's own grid queue."""

    def __init__(
        self,
        scheduler: "CondorGScheduler",
        collector_host: str,
        credential_source=None,
        binaries_url: str = "",
    ):
        self.scheduler = scheduler
        self.sim = scheduler.sim
        self.collector_host = collector_host
        self.credential_source = credential_source
        self.binaries_url = binaries_url
        self._ids = itertools.count(1)
        self.submitted: list[str] = []        # grid job ids
        self.binaries_fetched = 0
        self.live_startds: list[Startd] = []

    # -- public API -----------------------------------------------------------
    def glide_in(self, spec: GlideInSpec) -> list[str]:
        """Submit `spec.count` glidein GRAM jobs to `spec.site`."""
        job_ids = []
        for _ in range(spec.count):
            n = next(self._ids)
            request = GramJobRequest(
                label=f"glidein-{n}",
                runtime=spec.walltime,       # runs until killed/idle
                walltime=spec.walltime,
                cpus=spec.cpus_per_glidein,
                program=self._bootstrap_program(spec, n),
            )
            job_id = self.scheduler.submit(request, resource=spec.site)
            job_ids.append(job_id)
        self.submitted.extend(job_ids)
        self.sim.metrics.counter("glidein.submitted").inc(spec.count)
        self.sim.trace.log("glidein", "submitted", site=spec.site,
                           count=spec.count)
        return job_ids

    def flood(self, sites: list[str], per_site: int = 1,
              **spec_kwargs) -> list[str]:
        """The §4.4 high-throughput technique: glideins everywhere."""
        out = []
        for site in sites:
            out.extend(self.glide_in(GlideInSpec(site=site, count=per_site,
                                                 **spec_kwargs)))
        return out

    def live_count(self) -> int:
        return sum(1 for s in self.live_startds
                   if s.host.get_service(s.name) is s)

    # -- the bootstrap program ----------------------------------------------------
    def _bootstrap_program(self, spec: GlideInSpec, n: int):
        manager = self
        submitted_at = self.sim.now

        def bootstrap(ctx):
            """Runs inside the remote allocation (an LRM job body)."""
            # Step 1: fetch the Condor binaries for this architecture from
            # the central repository, unless a previous glidein on this
            # machine already cached them.
            url = spec.binaries_url or manager.binaries_url
            if url:
                cache = ctx.host.stable.namespace("glidein-cache")
                if cache.get(url) is None:
                    # Claim the download (flock on the cache file) so a
                    # sibling glidein starting at the same instant waits
                    # on the cache instead of fetching again.
                    cache.put(url, "fetching")
                    credential = None
                    if manager.credential_source is not None:
                        from ..gridftp.server import parse_gsiftp_url
                        repo_host, _ = parse_gsiftp_url(url)
                        credential = manager.credential_source(repo_host)
                    got = yield from gridftp_get(ctx.host, url,
                                                 credential=credential)
                    cache.put(url, got["size"])
                    manager.binaries_fetched += 1
                    ctx.sim.trace.log("glidein", "binaries_fetched",
                                      url=url, size=got["size"])
            # Step 2: start the startd, joined to the personal pool.
            name = f"glidein-{n}@{ctx.host.name}"
            ad = machine_ad(name, arch=spec.arch, mips=spec.mips,
                            site=ctx.host.site, glidein=True)
            startd = Startd(
                ctx.host, name,
                collector=manager.collector_host,
                ad=ad,
                glidein=True,
                idle_timeout=spec.idle_timeout,
            )
            startd.ADVERTISE_INTERVAL = spec.advertise_interval
            manager.live_startds.append(startd)
            ctx.sim.metrics.gauge("glidein.live").inc()
            ctx.sim.metrics.histogram("glidein.binding_delay").observe(
                ctx.sim.now - submitted_at)
            ctx.sim.trace.log("glidein", "startd_up", name=name,
                              site=ctx.host.site)
            try:
                # Run until the startd decides to shut down (idle timeout)
                # -- or until the allocation's walltime kills us.
                yield startd.stopped
            finally:
                # Synchronous teardown works even under a hard kill
                # (GeneratorExit): daemons die with the allocation.
                manager._teardown_startd(startd)
            return 0

        return bootstrap

    def _teardown_startd(self, startd: Startd) -> None:
        if startd.state == "Busy":
            # close the sandbox's trace interval and the busy-slot gauge:
            # the job it was running died with the allocation (the shadow
            # lease will requeue it)
            startd.sim.metrics.gauge("startd.busy_slots").dec()
            startd.state = "Unclaimed"
            if startd.current_job_id:
                startd.sim.trace.log(f"startd:{startd.startd_name}",
                                     "job_vacated",
                                     job=startd.current_job_id,
                                     progress=0.0)
        if startd.host.get_service(startd.name) is startd:
            startd.shutdown()
        for proc in startd._procs:
            if proc.alive:
                proc.kill(cause="glidein allocation ended")
        if startd in self.live_startds:
            self.live_startds.remove(startd)
            self.sim.metrics.gauge("glidein.live").dec()
        self.sim.trace.log("glidein", "startd_down", name=startd.startd_name)
