"""The Condor-G user API (paper §4.1).

"The agent allows the user to treat the Grid as an entirely local
resource", with operations to submit jobs, query status, cancel, get
callbacks/e-mail on termination, and read detailed logs.  The
:class:`CondorGAgent` is that personal desktop agent: everything it
spawns (Scheduler, GridManager, GASS server, personal Collector/
Negotiator/Schedd for GlideIns, credential monitor) lives on the user's
submit machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..condor import CondorJob, Schedd, job_ad, next_cluster_id
from ..condor.collector import Collector
from ..condor.negotiator import Negotiator
from ..gass.server import GassServer
from ..gram.protocol import GramJobRequest
from ..gsi.proxy import ProxyCredential
from ..sim.hosts import Host
from ..states import JobState, is_complete, is_terminal
from . import job as J
from .broker import Broker
from .credmon import CredentialMonitor
from .gcat import gcat_wrap
from .glidein import GlideInManager, GlideInSpec
from .job import GridJob
from .scheduler import CondorGScheduler
from .userlog import Notifier, UserLog


@dataclass
class JobDescription:
    """What a user hands to :meth:`CondorGAgent.submit`."""

    executable: str = "a.out"
    arguments: tuple = ()
    input_size: int = 1000         # bytes staged to the remote site
    stdin_data: str = ""
    runtime: float = 1.0
    walltime: Optional[float] = None
    cpus: int = 1
    universe: str = "grid"         # grid | vanilla | standard
    requirements: str = "true"     # vanilla/standard matchmaking
    rank: str = "0"
    io_interval: float = 0.0       # standard universe remote I/O cadence
    io_bytes: int = 0
    env: dict = field(default_factory=dict)
    program: Optional[Callable] = None
    stream_stdout: bool = True
    stream_stderr: bool = False
    output_files: tuple = ()       # scratch file names staged out at end
    exit_code: int = 0
    gcat_mss_url: str = ""         # ship output chunks to this MSS base URL
    #: logical dataset names to stage to the execution site beforehand
    input_datasets: tuple = ()
    #: (name, size) datasets the job produces, archived at the site SE
    output_datasets: tuple = ()


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time snapshot of one job."""

    job_id: str
    state: str
    universe: str
    resource: str = ""
    exit_code: Optional[int] = None
    failure_reason: str = ""
    hold_reason: str = ""
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    attempts: int = 0
    max_attempts: int = 0

    @property
    def is_complete(self) -> bool:
        return is_complete(self.state)

    @property
    def is_terminal(self) -> bool:
        return is_terminal(self.state)


class CondorGAgent:
    """One user's computation management agent."""

    def __init__(
        self,
        host: Host,
        user: str,
        proxy: Optional[ProxyCredential] = None,
        broker: Optional[Broker] = None,
        myproxy: Optional[dict] = None,
        glidein_binaries_url: str = "",
        personal_pool: bool = True,
        negotiation_interval: float = 20.0,
        claim_reuse: bool = False,
        warn_threshold: float = 3600.0,
        max_submitted_per_resource: Optional[int] = None,
        data_services=None,
        grid_monitor: bool = False,
    ):
        self.host = host
        self.sim = host.sim
        self.user = user
        self.notifier = Notifier()
        self.userlog = UserLog()
        self.credmon: Optional[CredentialMonitor] = None
        credential_source = None

        self.scheduler = CondorGScheduler(
            host, user, broker=broker,
            credential_source=None,       # wired below once credmon exists
            notifier=self.notifier, userlog=self.userlog,
            max_submitted_per_resource=max_submitted_per_resource,
            data_services=data_services,
            grid_monitor=grid_monitor)

        if proxy is not None:
            self.credmon = CredentialMonitor(
                self.scheduler, host, user, proxy,
                warn_threshold=warn_threshold, myproxy=myproxy)
            credential_source = self.credmon.credential_source
            self.scheduler.credential_source = credential_source

        # The user's GASS server: staging source + stdout sink.
        self.gass = GassServer(host, name=f"gass-{user}")

        # Personal Condor pool on the desktop: Collector + Negotiator +
        # Schedd.  GlideIns join this pool (Figure 2).
        self.collector: Optional[Collector] = None
        self.schedd: Optional[Schedd] = None
        self.glideins: Optional[GlideInManager] = None
        #: autoscaler over ``glideins``, attached by the testbed when any
        #: site declares a FactoryPolicy (repro.factory)
        self.factory = None
        if personal_pool:
            self.collector = Collector(host)
            Negotiator(host, collector=host.name,
                       cycle_interval=negotiation_interval,
                       credential=None)
            self.schedd = Schedd(host, name=f"schedd@{user}",
                                 collector=host.name,
                                 claim_reuse=claim_reuse)
            self.glideins = GlideInManager(
                self.scheduler, collector_host=host.name,
                credential_source=credential_source,
                binaries_url=glidein_binaries_url)

    # -- submission ------------------------------------------------------------
    def submit(self, description: JobDescription,
               resource: str = "") -> str:
        """Submit a job; returns its id.  Grid-universe jobs go through
        GRAM to `resource` (or wherever the broker decides); vanilla/
        standard jobs enter the personal pool's queue and run on
        glideins (or any other pool member)."""
        if description.universe == "grid":
            return self._submit_grid(description, resource)
        return self._submit_condor(description)

    def _submit_grid(self, d: JobDescription, resource: str) -> str:
        job_id = J.next_grid_job_id()
        exe_url = self.gass.stage_in(f"{job_id}/{d.executable}",
                                     size=d.input_size)
        stdin_url = ""
        if d.stdin_data:
            stdin_url = self.gass.stage_in(f"{job_id}/stdin",
                                           data=d.stdin_data)
        stdout_url = ""
        if d.stream_stdout:
            stdout_url = self.gass.url(f"{job_id}/stdout")
        stderr_url = ""
        if d.stream_stderr:
            stderr_url = self.gass.url(f"{job_id}/stderr")
        output_urls = {name: self.gass.url(f"{job_id}/outputs/{name}")
                       for name in d.output_files}
        program = d.program
        if d.gcat_mss_url and program is not None:
            credential_source = None
            if self.credmon is not None:
                credential_source = self.credmon.credential_source
            program = gcat_wrap(program, d.gcat_mss_url,
                                credential_source=credential_source)
        env = dict(d.env)
        if stdout_url:
            env.setdefault("GASS_URL", stdout_url)
        request = GramJobRequest(
            executable_url=exe_url,
            stdin_url=stdin_url,
            stdout_url=stdout_url,
            stderr_url=stderr_url,
            output_files=output_urls,
            runtime=d.runtime,
            walltime=d.walltime,
            cpus=d.cpus,
            env=env,
            program=program,
            exit_code=d.exit_code,
            label=d.executable,
            input_datasets=tuple(d.input_datasets),
            output_datasets=tuple(tuple(o) for o in d.output_datasets),
        )
        return self.scheduler.submit(request, resource=resource,
                                     job_id=job_id)

    def _submit_condor(self, d: JobDescription) -> str:
        if self.schedd is None:
            raise RuntimeError("agent built without a personal pool")
        job = CondorJob(
            job_id=next_cluster_id(),
            ad=job_ad(self.user, requirements=d.requirements, rank=d.rank),
            runtime=d.runtime,
            universe=d.universe,
            io_interval=d.io_interval,
            io_bytes=d.io_bytes,
            program=d.program,
        )
        return self.schedd.submit(job)

    # -- queries ------------------------------------------------------------
    def status(self, job_id: str) -> JobStatus:
        if job_id in self.scheduler.jobs:
            return self._grid_status(self.scheduler.jobs[job_id])
        if self.schedd is not None and job_id in self.schedd.jobs:
            return self._condor_status(self.schedd.jobs[job_id])
        raise KeyError(job_id)

    def _grid_status(self, job: GridJob) -> JobStatus:
        return JobStatus(
            job_id=job.job_id, state=job.state, universe="grid",
            resource=job.resource, exit_code=job.exit_code,
            failure_reason=job.failure_reason, hold_reason=job.hold_reason,
            submit_time=job.submit_time, start_time=job.start_time,
            end_time=job.end_time, attempts=job.attempts,
            max_attempts=job.max_attempts)

    def _condor_status(self, job: CondorJob) -> JobStatus:
        return JobStatus(
            job_id=job.job_id, state=job.state, universe=job.universe,
            resource=job.matched_to,
            exit_code=job.exit_code,
            hold_reason=job.hold_reason,
            submit_time=job.submit_time, start_time=job.start_time,
            end_time=job.end_time, attempts=job.restarts)

    def logs(self, job_id: str) -> list:
        return self.userlog.for_job(job_id)

    def stdout_of(self, job_id: str) -> str:
        path = f"{job_id}/stdout"
        if self.gass.files.exists(path):
            return self.gass.read(path).data
        return ""

    def stderr_of(self, job_id: str) -> str:
        path = f"{job_id}/stderr"
        if self.gass.files.exists(path):
            return self.gass.read(path).data
        return ""

    def output_file(self, job_id: str, name: str):
        """A staged-out output file (SimFile), or None if not arrived."""
        path = f"{job_id}/outputs/{name}"
        if self.gass.files.exists(path):
            return self.gass.read(path)
        return None

    def on_termination(self, fn: Callable[[str, str, dict], None]) -> None:
        self.notifier.subscribe(fn)

    @property
    def inbox(self) -> list:
        return self.notifier.inbox

    def all_terminal(self) -> bool:
        grid_done = self.scheduler.all_terminal()
        condor_done = True
        if self.schedd is not None:
            condor_done = all(
                is_terminal(j.state) or j.state == JobState.HELD
                for j in self.schedd.jobs.values())
        return grid_done and condor_done

    # -- control ------------------------------------------------------------
    def cancel(self, job_id: str) -> None:
        if job_id in self.scheduler.jobs:
            self.sim.spawn(self.scheduler.cancel(job_id),
                           name=f"cancel:{job_id}")
        elif self.schedd is not None:
            self.schedd.remove(job_id)

    def glide_in(self, site: str, count: int = 1, **kwargs) -> list[str]:
        if self.glideins is None:
            raise RuntimeError("agent built without a personal pool")
        return self.glideins.glide_in(
            GlideInSpec(site=site, count=count, **kwargs))

    def flood_glideins(self, sites: list[str], per_site: int = 1,
                       **kwargs) -> list[str]:
        if self.glideins is None:
            raise RuntimeError("agent built without a personal pool")
        return self.glideins.flood(sites, per_site=per_site, **kwargs)

    def refresh_proxy(self, proxy: ProxyCredential) -> None:
        """The user re-ran grid-proxy-init (§4.3)."""
        if self.credmon is None:
            raise RuntimeError("agent has no credential monitor")
        self.credmon.refresh(proxy)
