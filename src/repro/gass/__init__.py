"""GASS: Global Access to Secondary Storage (paper §3.4)."""

from .client import gass_append, gass_get, gass_put, gass_received
from .files import FileStore, SimFile
from .server import (
    DEFAULT_BANDWIDTH,
    GassServer,
    make_url,
    parse_url,
    reinstall_on_boot,
)

__all__ = [
    "DEFAULT_BANDWIDTH", "FileStore", "GassServer", "SimFile",
    "gass_append", "gass_get", "gass_put", "gass_received", "make_url",
    "parse_url", "reinstall_on_boot",
]
