"""GASS: Global Access to Secondary Storage (paper §3.4).

The Condor-G GridManager runs a GASS server on the submit machine; the
remote JobManager fetches the job's executable and stdin from it and
streams stdout/stderr back to it.  URLs look like
``gass://<host>/<service>/<path>``.

Transfers are paid for in simulated time: ``size / bandwidth`` plus the
normal per-message network latency.  The server's file store is backed by
the host's stable storage, so a submit-machine reboot comes back with the
same files (the job queue and staged files live on disk).
"""

from __future__ import annotations

from typing import Optional

from ..sim.hosts import Host
from ..sim.rpc import Service
from .files import FileStore, SimFile

DEFAULT_BANDWIDTH = 1_000_000.0   # bytes per simulated second


def make_url(host: str, service: str, path: str) -> str:
    return f"gass://{host}/{service}/{path.lstrip('/')}"


def parse_url(url: str) -> tuple[str, str, str]:
    """-> (host, service, path)."""
    if not url.startswith("gass://"):
        raise ValueError(f"not a gass URL: {url!r}")
    rest = url[len("gass://"):]
    parts = rest.split("/", 2)
    if len(parts) < 3:
        raise ValueError(f"gass URL needs host/service/path: {url!r}")
    return parts[0], parts[1], parts[2]


class GassServer(Service):
    """File service with get/put/append and offset reads.

    ``received`` tracks how many bytes of each streamed file have arrived;
    a reconnecting JobManager asks for it to resume streaming from the
    right offset instead of resending everything (§3.2).
    """

    service_name = "gass"

    def __init__(
        self,
        host: Host,
        name: str = "",
        authorizer=None,
        bandwidth: float = DEFAULT_BANDWIDTH,
        persistent: bool = True,
    ):
        super().__init__(host, name=name or self.service_name,
                         authorizer=authorizer)
        stable_ns = host.stable.namespace(f"gass:{self.name}") \
            if persistent else None
        self.files = FileStore(stable_ns)
        self.bandwidth = bandwidth

    # -- address -----------------------------------------------------------
    def url(self, path: str) -> str:
        return make_url(self.host.name, self.name, path)

    def _pay(self, nbytes: int):
        if self.bandwidth and nbytes > 0:
            return self.sim.timeout(nbytes / self.bandwidth)
        return self.sim.timeout(0.0)

    def _account(self, direction: str, nbytes: int, peer: str) -> None:
        m = self.sim.metrics
        m.counter(f"gass.bytes_{direction}").inc(nbytes,
                                                 label=self.host.name)
        m.counter("gass.transfers").inc(label=peer)

    @property
    def bytes_sent(self) -> int:
        counter = self.sim.metrics.counter("gass.bytes_sent")
        return int(counter.labelled(self.host.name))

    @property
    def bytes_received(self) -> int:
        counter = self.sim.metrics.counter("gass.bytes_received")
        return int(counter.labelled(self.host.name))

    # -- handlers -----------------------------------------------------------
    def handle_get(self, ctx, path: str):
        f = self.files.get(path)
        yield self._pay(f.size)
        self._account("sent", f.size, ctx.caller_host)
        self.sim.trace.log(f"gass:{self.host.name}", "get", path=path,
                           size=f.size, to=ctx.caller_host)
        return {"path": f.path, "size": f.size, "data": f.data,
                "checksum": f.checksum}

    def handle_put(self, ctx, path: str, size: int = 0, data: str = ""):
        f = SimFile(path, size=size, data=data)
        yield self._pay(f.size)
        self.files.put(f)
        self._account("received", f.size, ctx.caller_host)
        self.sim.trace.log(f"gass:{self.host.name}", "put", path=path,
                           size=f.size)
        return f.size

    def handle_append(self, ctx, path: str, data: str, offset: int = -1):
        """Append a stream chunk; `offset` guards against duplicates.

        If the chunk's claimed offset is behind what we already have, the
        overlap is dropped (duplicate after a resend); a gap is an error
        the caller must fill by resending from `received`.
        """
        current = self.files.get(path).size if self.files.exists(path) else 0
        if offset >= 0:
            if offset > current:
                raise ValueError(
                    f"stream gap on {path}: have {current}, got {offset}")
            skip = current - offset
            data = data[skip:]
        yield self._pay(len(data))
        f = self.files.append(path, data)
        if data:
            self._account("received", len(data), ctx.caller_host)
            self.sim.trace.log(f"gass:{self.host.name}", "append",
                               path=path, size=len(data), total=f.size)
        return f.size

    def handle_received(self, ctx, path: str) -> int:
        """How many bytes of `path` this server already has."""
        return self.files.get(path).size if self.files.exists(path) else 0

    def handle_exists(self, ctx, path: str) -> bool:
        return self.files.exists(path)

    def handle_list(self, ctx) -> list[str]:
        return self.files.list()

    # -- local convenience ----------------------------------------------------
    def stage_in(self, path: str, size: int = 0, data: str = "") -> str:
        """Place a local file into the store; returns its URL."""
        self.files.put(SimFile(path, size=size, data=data))
        return self.url(path)

    def read(self, path: str) -> SimFile:
        return self.files.get(path)


def reinstall_on_boot(host: Host, **kwargs) -> GassServer:
    """Create a GASS server now and re-create it on every host restart."""
    server = GassServer(host, **kwargs)

    def boot(h: Host) -> None:
        GassServer(h, **kwargs)

    host.add_boot_action(boot)
    return server
