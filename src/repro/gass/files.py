"""Simulated files.

File *content* is modelled as a (possibly empty) string plus an explicit
size in bytes, so large transfers can be represented without large
strings: executables and physics datasets carry only a size, while
stdout/stderr streams carry real text (benchmarks assert on both).

Every file carries a deterministic ``checksum`` over ``(path, size,
data)``.  Transfer services (GridFTP third-party fetch, the
TransferScheduler in :mod:`repro.data`) compare the checksum of an
arrived copy against the expected one to detect truncated or corrupted
replicas; the chaos invariants audit the same property post-mortem.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def file_digest(path: str, size: int, data: str) -> str:
    """Deterministic short digest of a file's identity and content."""
    h = hashlib.sha256(f"{path}|{size}|{data}".encode())
    return h.hexdigest()[:16]


@dataclass
class SimFile:
    """A named blob with a size, optional literal content and a checksum."""

    path: str
    size: int = 0
    data: str = ""
    checksum: str = ""

    def __post_init__(self) -> None:
        if self.data and self.size == 0:
            self.size = len(self.data)
        if self.size < 0:
            raise ValueError(f"negative size for {self.path!r}: {self.size}")
        if self.data and self.size != len(self.data):
            raise ValueError(
                f"size/data mismatch for {self.path!r}: "
                f"size={self.size} but len(data)={len(self.data)}")
        self.checksum = file_digest(self.path, self.size, self.data)

    def append(self, text: str) -> None:
        self.data += text
        self.size += len(text)
        self.checksum = file_digest(self.path, self.size, self.data)


class FileStore:
    """A host's file namespace, optionally persisted to stable storage."""

    def __init__(self, stable_ns=None):
        self._files: dict[str, SimFile] = {}
        self._stable = stable_ns
        if stable_ns is not None:
            for path, record in stable_ns.items():
                record = dict(record)
                # Records written before checksums existed rehydrate fine:
                # __post_init__ recomputes the digest either way.
                record.pop("checksum", None)
                self._files[path] = SimFile(**record)

    def put(self, file: SimFile) -> None:
        self._files[file.path] = file
        self._persist(file)

    def get(self, path: str) -> SimFile:
        f = self._files.get(path)
        if f is None:
            raise FileNotFoundError(path)
        return f

    def exists(self, path: str) -> bool:
        return path in self._files

    def append(self, path: str, text: str) -> SimFile:
        f = self._files.get(path)
        if f is None:
            f = SimFile(path)
            self._files[path] = f
        f.append(text)
        self._persist(f)
        return f

    def delete(self, path: str) -> None:
        self._files.pop(path, None)
        if self._stable is not None:
            self._stable.delete(path)

    def list(self) -> list[str]:
        return sorted(self._files)

    def _persist(self, f: SimFile) -> None:
        if self._stable is not None:
            self._stable.put(f.path, {"path": f.path, "size": f.size,
                                      "data": f.data,
                                      "checksum": f.checksum})
