"""GASS client helpers (generator functions for use with ``yield from``)."""

from __future__ import annotations

from typing import Optional

from ..sim.hosts import Host
from ..sim.rpc import call
from .server import parse_url


def gass_get(src: Host, url: str, credential=None, timeout: float = 60.0):
    """Fetch a file by URL; returns {'path', 'size', 'data'}."""
    host, service, path = parse_url(url)
    result = yield from call(src, host, service, "get", timeout=timeout,
                             credential=credential, path=path)
    return result


def gass_put(src: Host, url: str, size: int = 0, data: str = "",
             credential=None, timeout: float = 60.0):
    """Store a file at URL; returns the stored size."""
    host, service, path = parse_url(url)
    result = yield from call(src, host, service, "put", timeout=timeout,
                             credential=credential, path=path, size=size,
                             data=data)
    return result


def gass_append(src: Host, url: str, data: str, offset: int = -1,
                credential=None, timeout: float = 60.0):
    """Append a stream chunk at URL; returns the server's new size."""
    host, service, path = parse_url(url)
    result = yield from call(src, host, service, "append", timeout=timeout,
                             credential=credential, path=path, data=data,
                             offset=offset)
    return result


def gass_received(src: Host, url: str, credential=None,
                  timeout: float = 60.0):
    """Ask the server how many bytes of `url` it already holds."""
    host, service, path = parse_url(url)
    result = yield from call(src, host, service, "received", timeout=timeout,
                             credential=credential, path=path)
    return result
